"""The cache-aware sweep engine.

Everything the benchmark harness measures flows through one of three
entry points:

* :func:`run_specs` / :func:`run_collective` — collective points
  (:class:`~repro.core.runner.CollectiveSpec`);
* :func:`sweep_microbench` — raw CMA microbenchmark points
  (:mod:`repro.bench.microbench` functions);
* :func:`cached_call` — expensive scalar computations (the NLLS fits in
  :mod:`repro.core.fitting`).

Each checks the active :class:`~repro.exec.context.ExecContext`'s cache
first, fans cache misses out over the process pool, stores the computed
values back, and returns results in input order.  The determinism
contract — enforced by ``tests/test_exec_differential.py`` — is that the
returned values are *bit-identical* whether a point was computed serially,
in a pool worker, or served from a warm cache: every point builds a fresh
simulated node, so points share no mutable state, and the simulator itself
is deterministic.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.runner import CollectiveResult, CollectiveSpec
from repro.core.runner import run_collective as _run_collective_fresh
from repro.core.runner import run_collective_pooled as _run_collective_pooled
from repro.exec import context as _context
from repro.exec.pool import map_points

__all__ = [
    "sweep",
    "run_specs",
    "run_collective",
    "sweep_microbench",
    "microbench_point",
    "cached_call",
]

_MISS = object()


def sweep(
    kind: str,
    runner: Callable[[Any], Any],
    points: Sequence[Any],
    payloads: Optional[Sequence[Any]] = None,
    decode: Optional[Callable[[Any, int], Any]] = None,
    group_key: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """Run ``runner`` over ``points`` under the active context.

    ``payloads`` (defaults to the points themselves) are what gets
    fingerprinted for the cache key; ``runner`` must be a picklable
    top-level callable for the pool path.  ``decode(raw, i)`` inflates a
    slimmed cross-process record back into the full value for point ``i``
    — applied *before* ``cache.put``, so the on-disk cache always stores
    full values and stays byte-compatible with entries written by older
    code under the same ``CACHE_VERSION``.

    ``group_key`` marks points that share a warm-node pool key: the
    scheduler routes same-keyed points to one worker back to back (so a
    leased node is reused instead of rotating through the pool) and the
    legacy fan-out sorts misses so equal keys land adjacently in worker
    chunks (ties keep input order).  Results are still returned in input
    order, and each point is simulated on a fresh-or-reset node either
    way, so values are unaffected.

    Dispatch: with the active context's ``sched`` mode ``steal`` /
    ``nosteal`` (and no per-point timeout configured), cache misses go
    through the work-stealing scheduler (:mod:`repro.exec.sched`) —
    cost-model chunking, sticky routing, streamed results with cache
    writes overlapped against the remaining compute.  ``sched=off``, a
    configured timeout, or a tripped circuit breaker takes the legacy
    :func:`map_points` path (a ``serial``-state breaker forces it
    inline).  Both produce bit-identical values (``tests/test_sched.py``).

    Crash safety: with a journal configured
    (:attr:`~repro.exec.context.ExecContext.journal_dir`) every computed
    value is appended to a write-ahead log before the sweep moves on;
    re-running the same sweep after a kill replays the logged points —
    values bit-identical, cache state restored — and only computes the
    rest.  Points quarantined by the scheduler's poison ladder arrive as
    :class:`~repro.exec.sched.PoisonedPoint` markers in the result list
    (never cached, never journalled as done); healthy runs never see one.
    """
    ctx = _context.current()
    cache = ctx.cache if ctx is not None else None
    workers = ctx.workers if ctx is not None else 1
    points = list(points)
    results: List[Any] = [_MISS] * len(points)
    keys: List[Optional[str]] = [None] * len(points)
    miss: List[int] = []
    if cache is not None:
        for i, pt in enumerate(points):
            keys[i] = cache.key_for(
                kind, payloads[i] if payloads is not None else pt
            )
        for i, (hit, value) in enumerate(cache.get_many(keys)):
            if hit:
                results[i] = value
            else:
                miss.append(i)
    else:
        miss = list(range(len(points)))
    cache_hits = len(points) - len(miss)

    # Write-ahead journal: fingerprint the *whole* sweep (cache state
    # varies between attempts; the point list is what identifies it),
    # replay any points a previous killed run already completed, and
    # restore them into the cache so a resumed run converges on the same
    # on-disk state an uninterrupted one would have.
    jlog = None
    replayed = 0
    journal = ctx.journal() if ctx is not None else None
    if journal is not None and miss:
        if cache is not None:
            digests = list(keys)
        else:
            from repro.exec.keying import digest as _digest
            from repro.exec.cache import CACHE_VERSION as _SALT

            digests = [
                _digest(kind, payloads[i] if payloads is not None else pt, _SALT)
                for i, pt in enumerate(points)
            ]
        jlog = journal.open_sweep(kind, digests)
        if jlog.replayed:
            still: List[int] = []
            replay_put = []
            for i in miss:
                value = jlog.replayed.get(i, _MISS)
                if value is _MISS:
                    still.append(i)
                    continue
                results[i] = value
                replayed += 1
                if cache is not None:
                    replay_put.append((keys[i], value))
            miss = still
            if replay_put:
                cache.put_many(replay_put)

    run_wall = 0.0
    sim_events = 0
    timeout = ctx.point_timeout if ctx is not None else None
    breaker = ctx.breaker if ctx is not None else None
    use_sched = (
        ctx is not None
        and ctx.sched != "off"
        and timeout is None
        and len(miss) > 1
        and (breaker is None or breaker.state == "sched")
    )
    try:
        if miss and use_sched:
            from repro.exec import sched as _sched

            miss_points = [points[i] for i in miss]
            cost = ctx.cost_model().cost
            costs = [cost(p) for p in miss_points]
            groups = (
                [group_key(p) for p in miss_points]
                if group_key is not None else None
            )

            def on_result(j: int, value: Any) -> None:
                # Streams back as chunks complete: decode and write to the
                # cache *now*, overlapped with the chunks still computing.
                nonlocal sim_events
                i = miss[j]
                if isinstance(value, _sched.PoisonedPoint):
                    # Quarantined, not computed: re-anchor the marker to
                    # the sweep-global index; never cache or journal it
                    # as done (a resume retries the point).
                    value = _sched.PoisonedPoint(
                        index=i, strikes=value.strikes, reason=value.reason
                    )
                    results[i] = value
                    if jlog is not None:
                        jlog.record_poison(i, value.reason)
                    return
                if decode is not None:
                    value = decode(value, i)
                results[i] = value
                sim_events += getattr(value, "sim_events", 0) or 0
                if cache is not None:
                    cache.put(keys[i], value)
                if jlog is not None:
                    jlog.record(i, value)

            t0 = time.perf_counter()
            _, sstats = _sched.run_scheduled(
                runner,
                miss_points,
                workers=workers,
                costs=costs,
                groups=groups,
                stealing=ctx.sched == "steal",
                on_result=on_result,
                pool=ctx.sched_pool(),
            )
            run_wall = time.perf_counter() - t0
            ctx.stats.record_sched(sstats)
        elif miss:
            if group_key is not None and len(miss) > 1:
                miss.sort(key=lambda i: (group_key(points[i]), i))
            serial_only = breaker is not None and breaker.state == "serial"
            executor = (
                ctx.executor() if ctx is not None and not serial_only else None
            )
            t0 = time.perf_counter()
            computed = map_points(
                runner,
                [points[i] for i in miss],
                1 if serial_only else workers,
                executor=executor,
                timeout=timeout,
                retries=ctx.point_retries if ctx is not None else 0,
                on_pool_broken=(
                    breaker.record_legacy_failure if breaker is not None else None
                ),
            )
            run_wall = time.perf_counter() - t0
            put_batch = []
            for i, value in zip(miss, computed):
                if decode is not None:
                    value = decode(value, i)
                results[i] = value
                # Collective results report how many simulator events the
                # point cost; cache hits replay none, so only misses count.
                sim_events += getattr(value, "sim_events", 0) or 0
                if cache is not None:
                    put_batch.append((keys[i], value))
                if jlog is not None:
                    jlog.record(i, value)
            if put_batch:
                cache.put_many(put_batch)
    except BaseException:
        # The sweep did NOT complete: keep the journal for the resume.
        if jlog is not None:
            jlog.close()
        raise
    if jlog is not None:
        jlog.finish()
    if ctx is not None:
        ctx.stats.points_total += len(points)
        ctx.stats.points_run += len(miss)
        ctx.stats.cache_hits += cache_hits
        ctx.stats.journal_replayed += replayed
        ctx.stats.sim_events += sim_events
        ctx.stats.run_wall_s += run_wall
        if breaker is not None:
            ctx.stats.breaker_state = breaker.state
        ctx.stats.record_kind(
            kind, len(points), len(miss), cache_hits + replayed
        )
        if cache is not None:
            ctx.stats.cache_quarantined = max(
                ctx.stats.cache_quarantined, cache.quarantine_count()
            )
    return results


# -- collective points -------------------------------------------------------


def _compute_collective(spec: CollectiveSpec, warm: bool) -> CollectiveResult:
    """The one place a sweep point's simulation actually runs.

    ``warm`` selects the warm-node pool (bit-identical, skips per-point
    node construction); tests patch this symbol to count executions.
    """
    if warm:
        return _run_collective_pooled(spec)
    return _run_collective_fresh(spec)


@lru_cache(maxsize=8)
def _preset_arch(name: str):
    """Per-process preset architecture (workers rebuild each name once)."""
    from repro.machine import get_arch

    return get_arch(name)


@dataclass(frozen=True)
class _CollectivePoint:
    """Slim picklable stand-in for a :class:`CollectiveSpec`.

    ``arch`` is the preset *name* whenever the spec's arch is value-equal
    to that preset, so a thousand-point sweep doesn't re-ship the full
    parameter/topology tables per point; workers rebuild (and memoize) the
    preset locally.  A customised arch still travels whole.
    """

    collective: str
    algorithm: str
    arch: Any  # str preset name, or a full Architecture
    procs: int
    eta: int
    root: int
    in_place: bool
    params: Tuple[Tuple[str, Any], ...]
    verify: bool
    trace: bool
    counts: Any
    faults: Any
    warm: bool
    #: transport lane (registry-resolved); rides along so group keys can
    #: separate lanes without re-resolving the registry on the worker side
    lane: str = "cma"


@dataclass
class _SlimResult:
    """A :class:`CollectiveResult` minus its spec (the parent re-attaches
    the original spec object, so results don't round-trip arch tables)."""

    latency_us: float
    per_rank_us: List[float]
    ctrl_messages: int
    cma_reads: int
    cma_writes: int
    sim_events: int
    trace_by_phase: Optional[dict]
    fallbacks: int = 0
    retries: int = 0
    faults_injected: int = 0
    xpmem_reads: int = 0
    xpmem_writes: int = 0
    xpmem_attaches: int = 0
    xpmem_page_faults: int = 0


#: id(arch) -> (arch, preset-name-or-None).  The full-dataclass equality
#: check against the preset is expensive enough to show up per point on
#: thousand-point sweeps, and specs overwhelmingly share one arch object
#: — memoise the verdict by identity.  The strong reference pins the
#: object so its id cannot be recycled; bounded, cleared when full.
_ARCH_TOKENS: dict = {}


def _arch_token(arch: Any) -> Optional[str]:
    ent = _ARCH_TOKENS.get(id(arch))
    if ent is not None and ent[0] is arch:
        return ent[1]
    token = None
    name = getattr(arch, "name", None)
    if isinstance(name, str):
        try:
            if _preset_arch(name) == arch:
                token = name
        except KeyError:
            pass
    if len(_ARCH_TOKENS) > 64:
        _ARCH_TOKENS.clear()
    _ARCH_TOKENS[id(arch)] = (arch, token)
    return token


def _slim_point(spec: CollectiveSpec, warm: bool) -> _CollectivePoint:
    arch = spec.arch
    token = _arch_token(arch)
    if token is not None:
        arch = token
    return _CollectivePoint(
        collective=spec.collective,
        algorithm=spec.algorithm,
        arch=arch,
        procs=spec.procs,
        eta=spec.eta,
        root=spec.root,
        in_place=spec.in_place,
        params=tuple(sorted(spec.params.items())),
        verify=spec.verify,
        trace=spec.trace,
        counts=spec.counts,
        faults=spec.faults,
        # Fault plans are run-scoped state outside the warm-pool key, so
        # faulted points always build fresh nodes (the runner enforces it
        # too; clearing the flag here keeps group_key honest as well).
        warm=warm and spec.faults is None,
        lane=spec.lane,
    )


def _exec_point(pt: _CollectivePoint) -> _SlimResult:
    """Worker-side execution: rebuild the spec, run it, return it slim."""
    arch = _preset_arch(pt.arch) if isinstance(pt.arch, str) else pt.arch
    spec = CollectiveSpec(
        collective=pt.collective,
        algorithm=pt.algorithm,
        arch=arch,
        procs=pt.procs,
        eta=pt.eta,
        root=pt.root,
        in_place=pt.in_place,
        params=dict(pt.params),
        verify=pt.verify,
        trace=pt.trace,
        counts=pt.counts,
        faults=pt.faults,
    )
    r = _compute_collective(spec, pt.warm)
    return _SlimResult(
        latency_us=r.latency_us,
        per_rank_us=r.per_rank_us,
        ctrl_messages=r.ctrl_messages,
        cma_reads=r.cma_reads,
        cma_writes=r.cma_writes,
        sim_events=r.sim_events,
        trace_by_phase=r.trace_by_phase,
        fallbacks=r.fallbacks,
        retries=r.retries,
        faults_injected=r.faults_injected,
        xpmem_reads=r.xpmem_reads,
        xpmem_writes=r.xpmem_writes,
        xpmem_attaches=r.xpmem_attaches,
        xpmem_page_faults=r.xpmem_page_faults,
    )


def _pool_group_key(
    pt: _CollectivePoint,
) -> Tuple[str, int, bool, bool, bool, str]:
    """Warm-node pool key of a point (:class:`~repro.core.runner.NodePool`
    keys nodes on exactly this tuple), stringly ordered for sorting, plus
    warmness and the transport lane: warm points sort ahead of cold ones
    (``not pt.warm``) instead of interleaving with them, so a chunk's
    leased node never alternates between pooled reuse and fresh builds,
    and same-lane points land adjacently, so a leased node's xpmem attach
    state is never interleaved across lanes within a worker chunk (each
    point still resets the node either way)."""
    arch = pt.arch
    name = arch if isinstance(arch, str) else str(getattr(arch, "name", ""))
    return (name, pt.procs, pt.verify, pt.trace, not pt.warm, pt.lane)


def _inflate_result(raw: Any, spec: CollectiveSpec) -> CollectiveResult:
    if isinstance(raw, CollectiveResult):  # a patched runner returned it whole
        return raw
    return CollectiveResult(
        spec=spec,
        latency_us=raw.latency_us,
        per_rank_us=raw.per_rank_us,
        ctrl_messages=raw.ctrl_messages,
        cma_reads=raw.cma_reads,
        cma_writes=raw.cma_writes,
        sim_events=raw.sim_events,
        trace_by_phase=raw.trace_by_phase,
        fallbacks=getattr(raw, "fallbacks", 0),
        retries=getattr(raw, "retries", 0),
        faults_injected=getattr(raw, "faults_injected", 0),
        xpmem_reads=getattr(raw, "xpmem_reads", 0),
        xpmem_writes=getattr(raw, "xpmem_writes", 0),
        xpmem_attaches=getattr(raw, "xpmem_attaches", 0),
        xpmem_page_faults=getattr(raw, "xpmem_page_faults", 0),
    )


def run_specs(specs: Iterable[CollectiveSpec]) -> List[CollectiveResult]:
    """Run every spec, pooled and cached per the active context.

    Cache keys fingerprint the *specs* (unchanged from PR 1 — warm cache
    entries stay valid); only the cross-process transport is slimmed.
    """
    specs = list(specs)
    ctx = _context.current()
    warm = ctx.warm_nodes if ctx is not None else _context.resolve_warm_nodes(None)
    points = [_slim_point(s, warm) for s in specs]
    return sweep(
        "collective",
        _exec_point,
        points,
        payloads=specs,
        decode=lambda raw, i: _inflate_result(raw, specs[i]),
        group_key=_pool_group_key,
    )


def run_collective(spec: CollectiveSpec) -> CollectiveResult:
    """Cache-aware single point (a one-element :func:`run_specs`)."""
    return run_specs([spec])[0]


# -- microbenchmark points ---------------------------------------------------


@dataclass(frozen=True)
class MicrobenchPoint:
    """One microbench invocation, with arguments normalised by name so the
    cache key is identical however the call was spelled."""

    fn: str
    arch: Any
    kwargs: Tuple[Tuple[str, Any], ...]


def microbench_point(fn_name: str, arch, args=(), kwargs=None) -> MicrobenchPoint:
    import repro.bench.microbench as mb

    target = inspect.unwrap(getattr(mb, fn_name))
    bound = inspect.signature(target).bind(arch, *args, **(kwargs or {}))
    bound.apply_defaults()
    items = {k: v for k, v in bound.arguments.items() if k != "arch"}
    return MicrobenchPoint(fn_name, arch, tuple(sorted(items.items())))


def _exec_microbench(pt: MicrobenchPoint):
    import repro.bench.microbench as mb

    fn = inspect.unwrap(getattr(mb, pt.fn))
    return fn(pt.arch, **dict(pt.kwargs))


def sweep_microbench(fn_name: str, calls: Sequence[Tuple[Any, tuple, dict]]) -> List[Any]:
    """Fan microbench points out: ``calls`` is ``(arch, args, kwargs)`` each."""
    points = [microbench_point(fn_name, a, args, kw) for a, args, kw in calls]
    return sweep(f"microbench.{fn_name}", _exec_microbench, points)


# -- scalar cached computations ----------------------------------------------


def cached_call(kind: str, payload: Any, compute: Callable[[], Any]) -> Any:
    """Memoise one expensive computation in the active context's cache.

    With no context (or no cache) this is just ``compute()``.
    """
    ctx = _context.current()
    if ctx is None or ctx.cache is None:
        return compute()
    key = ctx.cache.key_for(kind, payload)
    hit, value = ctx.cache.get(key)
    ctx.stats.points_total += 1
    if hit:
        ctx.stats.cache_hits += 1
        ctx.stats.record_kind(kind, 1, 0, 1)
        return value
    t0 = time.perf_counter()
    value = compute()
    ctx.stats.run_wall_s += time.perf_counter() - t0
    ctx.stats.points_run += 1
    ctx.stats.sim_events += getattr(value, "sim_events", 0) or 0
    ctx.stats.record_kind(kind, 1, 1, 0)
    ctx.cache.put(key, value)
    return value
