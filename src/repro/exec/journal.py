"""Write-ahead sweep journal: crash-safe point completion log with resume.

A sweep SIGKILLed hours in currently loses every computed point that had
not yet reached the result cache — and with the cache off, everything.
This module gives :func:`repro.exec.sweep.sweep` a write-ahead log: every
completed point is appended to an on-disk journal *before* the sweep
moves on, so an interrupted run (``kill -9``, power loss, ctrl-C) resumes
by replaying the journal, skipping the points it already holds, and
produces results byte-identical to an uninterrupted run (the recorded
value *is* the value — the simulator never re-executes a replayed point).

Enable with ``REPRO_SWEEP_JOURNAL=<dir>`` (or ``ExecContext(journal=...)``).
One journal file per sweep, named by the sweep's **content fingerprint**
— the digest of the sweep kind plus every point's cache key — so a
resumed process finds its own journal by recomputing the fingerprint, and
a journal can never replay into a sweep whose points differ.

File format (all integers little-endian)::

    frame := u32 length | u32 crc32(body) | body
    body  := pickle of a record tuple

    ("begin",  fingerprint, kind, npoints, salt)   -- first frame
    ("done",   index, payload)                     -- payload = pickled value
    ("poison", index, reason)                      -- quarantined point

Appends are flushed and fsync'd per record (``REPRO_JOURNAL_FSYNC=0``
trades durability for speed), so the journal survives the host dying,
not just the process.  A kill mid-append leaves a *torn tail*: a frame
whose length or CRC does not check out.  :meth:`SweepLog.replay`
truncates the file back to the last intact frame — a torn tail costs at
most one point, never the journal.  A header that does not match the
sweep (different fingerprint, point count, or code-version salt) resets
the file: stale journals are discarded, never replayed.

``poison`` frames are *not* replayed as completions: a point quarantined
last run (it killed or hung workers, see :mod:`repro.exec.sched`) is
retried on resume — the failure may have been environmental — but the
frames keep the quarantine history visible in the resume stats.

The journal complements the result cache: with the cache on, *finished*
sweeps resume as pure cache hits and the journal only carries the one
sweep that was mid-flight; with the cache off, the journal alone carries
it.  A sweep that completes deletes its journal file.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exec.cache import CACHE_VERSION
from repro.exec.keying import digest

__all__ = [
    "ENV_JOURNAL",
    "ENV_JOURNAL_FSYNC",
    "SweepJournal",
    "SweepLog",
    "sweep_fingerprint",
    "resolve_journal_dir",
    "resolve_journal_fsync",
]

ENV_JOURNAL = "REPRO_SWEEP_JOURNAL"
ENV_JOURNAL_FSYNC = "REPRO_JOURNAL_FSYNC"

#: frame header: u32 body length, u32 CRC-32 of the body
_FRAME = struct.Struct("<II")

#: refuse to trust absurd frame lengths (a torn header can decode as a
#: multi-gigabyte length and stall replay on a sparse read)
_MAX_FRAME = 256 * 1024 * 1024


def resolve_journal_dir(journal: Any = None) -> Optional[Path]:
    """Explicit argument > ``REPRO_SWEEP_JOURNAL`` > disabled (None)."""
    if journal is None:
        raw = os.environ.get(ENV_JOURNAL, "").strip()
        if not raw:
            return None
        journal = raw
    if journal is False:
        return None
    return Path(journal)


def resolve_journal_fsync(fsync: Optional[bool] = None) -> bool:
    """Explicit argument > ``REPRO_JOURNAL_FSYNC`` > on."""
    if fsync is not None:
        return bool(fsync)
    raw = os.environ.get(ENV_JOURNAL_FSYNC, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


def sweep_fingerprint(kind: str, point_digests: list) -> str:
    """Content fingerprint of one sweep: its kind + per-point cache keys.

    Uses the same canonical digest machinery (and code-version salt) as
    the cache, so the fingerprint is stable across process restarts and
    ``PYTHONHASHSEED`` values — the property resume depends on.
    """
    return digest("sweep-journal", (kind, list(point_digests)), CACHE_VERSION)


def _pack(record: Tuple) -> bytes:
    body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def _iter_frames(buf: bytes) -> Iterator[Tuple[int, Tuple]]:
    """Yield ``(end_offset, record)`` per intact frame; stop at the first
    torn one (short header, short body, CRC mismatch, or unpicklable)."""
    off = 0
    n = len(buf)
    while off + _FRAME.size <= n:
        length, crc = _FRAME.unpack_from(buf, off)
        if length > _MAX_FRAME:
            return
        end = off + _FRAME.size + length
        if end > n:
            return
        body = buf[off + _FRAME.size : end]
        if zlib.crc32(body) != crc:
            return
        try:
            record = pickle.loads(body)
        except Exception:
            return
        yield end, record
        off = end


class SweepLog:
    """One sweep's open journal: replay what's done, append what isn't.

    Never raises out of :meth:`record` / :meth:`record_poison` /
    :meth:`finish` — a full disk or yanked directory degrades the journal
    to a no-op, it never fails the sweep it exists to protect.
    """

    def __init__(
        self, path: Path, fingerprint: str, kind: str, npoints: int,
        fsync: bool = True,
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.kind = kind
        self.npoints = npoints
        self.fsync = fsync
        self._fh = None
        #: index -> value replayed from disk (filled by :meth:`replay`)
        self.replayed: Dict[int, Any] = {}
        #: poison frames seen during replay: index -> reason
        self.prior_poisons: Dict[int, str] = {}
        #: frames appended this session (done + poison)
        self.appended = 0

    # -- open / replay -------------------------------------------------------

    def open(self) -> "SweepLog":
        """Open (creating if absent), replay intact frames, truncate any
        torn tail, and leave the handle positioned for appends."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            self._fh = os.fdopen(fd, "r+b")
            buf = self._fh.read()
        except OSError:
            self._close_quietly()
            return self
        good_end = 0
        header_ok = False
        for end, record in _iter_frames(buf):
            if not header_ok:
                if (
                    isinstance(record, tuple)
                    and len(record) == 5
                    and record[0] == "begin"
                    and record[1] == self.fingerprint
                    and record[2] == self.kind
                    and record[3] == self.npoints
                    and record[4] == CACHE_VERSION
                ):
                    header_ok = True
                    good_end = end
                    continue
                break  # foreign/stale journal: reset below
            if isinstance(record, tuple) and len(record) == 3:
                tag, i, payload = record
                if tag == "done" and 0 <= int(i) < self.npoints:
                    try:
                        self.replayed[int(i)] = pickle.loads(payload)
                    except Exception:
                        # The frame CRC held but the value didn't load
                        # (e.g. a class renamed between runs): recompute.
                        pass
                    good_end = end
                    continue
                if tag == "poison" and 0 <= int(i) < self.npoints:
                    self.prior_poisons[int(i)] = str(payload)
                    good_end = end
                    continue
            break  # unrecognised record: treat like a torn tail
        try:
            if not header_ok:
                # Fresh, stale, or foreign file: restart it whole.
                self.replayed.clear()
                self.prior_poisons.clear()
                self._fh.seek(0)
                self._fh.truncate(0)
                self._append(("begin", self.fingerprint, self.kind,
                              self.npoints, CACHE_VERSION))
            elif good_end < len(buf):
                self._fh.seek(good_end)
                self._fh.truncate(good_end)
                self._sync()
            else:
                self._fh.seek(good_end)
        except OSError:
            self._close_quietly()
        return self

    # -- appends -------------------------------------------------------------

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def _append(self, record: Tuple) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(_pack(record))
            self._sync()
        except OSError:
            self._close_quietly()

    def record(self, index: int, value: Any) -> None:
        """Log point ``index`` complete, durably, value included."""
        if self._fh is None:
            return
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        self._append(("done", int(index), payload))
        self.appended += 1

    def record_poison(self, index: int, reason: str) -> None:
        """Log point ``index`` quarantined (kept for reporting; a resume
        still retries the point — see module docstring)."""
        self._append(("poison", int(index), str(reason)))
        self.appended += 1

    # -- completion ----------------------------------------------------------

    def finish(self) -> None:
        """The sweep completed: the journal has nothing left to protect."""
        self._close_quietly()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        """Close without deleting (the sweep did *not* complete)."""
        self._close_quietly()

    def _close_quietly(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.close()
            except OSError:
                pass


class SweepJournal:
    """Factory for per-sweep logs under one journal directory."""

    def __init__(self, root: os.PathLike | str, fsync: Optional[bool] = None):
        self.root = Path(root)
        self.fsync = resolve_journal_fsync(fsync)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.wal"

    def open_sweep(self, kind: str, point_digests: list) -> SweepLog:
        """Open (and replay) the journal for the sweep these digests name."""
        fp = sweep_fingerprint(kind, point_digests)
        log = SweepLog(
            self.path_for(fp), fp, kind, len(point_digests), fsync=self.fsync
        )
        return log.open()
