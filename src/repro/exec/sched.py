"""Work-stealing sweep scheduler with cost-model chunking and sticky routing.

The legacy fan-out (:func:`repro.exec.pool.map_points`) slices a sweep
into fixed-size chunks and round-robins them over a
``ProcessPoolExecutor``: a long-tail point (a large-message contended
convoy, per Fig 7 of the source paper) parks a whole chunk behind it
while other workers sit idle, and a point lands on whichever worker the
executor picks — never deliberately on the one whose warm
:class:`~repro.core.runner.NodePool` already holds its node.

This module replaces that with three cooperating pieces:

* :class:`CostModel` — predicts a per-point cost, preferring the analytic
  latency model (:mod:`repro.core.model`) and, where a compiled decision
  table is available, :class:`repro.serve.QueryEngine` to resolve the
  algorithm actually being priced; unmodeled points fall back to a
  ``(procs, nbytes, lane)`` heuristic.  Costs only *order* work, they
  never change results.
* :func:`build_chunks` — adaptive chunking: points are grouped by their
  warm-node group key and split into chunks targeting ``total_cost /
  (workers * oversub)``, so a convoy-heavy point rides alone while
  trivially cheap points batch up; groups are dispatched biggest-first so
  the expensive tail starts immediately and small chunks back-fill.
* :class:`StickyPool` — persistent worker processes with *per-worker*
  inboxes (a plain ``ProcessPoolExecutor`` cannot address a specific
  worker, which sticky routing requires).  Groups are LPT-assigned to
  workers — preferring a worker whose last-reported
  :func:`~repro.core.runner.NodePool.warm_keys` already contain the
  group's pool key — and a drained worker steals **whole groups** from
  the tail of the most loaded victim.  A group with an in-flight chunk is
  never stolen, so a warm group never runs on two workers concurrently
  (``tests/test_sched.py`` asserts this), and within a group execution
  order is input order: exactly the adjacency the warm-node pool needs.

Results stream back as chunks complete (the ``on_result`` callback is how
:func:`repro.exec.sweep.sweep` overlaps cache writes with the remaining
compute) and are reassembled in input order, preserving the
serial == pooled == cached bit-identity contract: chunking, stealing and
routing change *where and when* a point runs, never its inputs — every
point still executes on a fresh-or-reset node.

On a host where the pool would lose (one usable CPU, or process start-up
denied), the same chunking/routing machinery runs inline in-process —
same results, same stats, no IPC tax.  A worker death mid-run marks the
pool broken and the missing points are recomputed inline, so a sweep
always completes.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CostModel",
    "SchedStats",
    "StickyPool",
    "Chunk",
    "build_chunks",
    "run_scheduled",
    "usable_cpus",
]

#: Outstanding-chunk multiple the adaptive chunker targets per worker:
#: chunk cost aims at ``total / (workers * OVERSUB)`` so every worker has
#: slack to back-fill behind a straggler without drowning in dispatch.
OVERSUB = 4

#: Hard cap on points per chunk regardless of predicted cost.
MAX_CHUNK = 32

#: Parent poll interval while waiting on worker results (also the dead-
#: worker detection latency).
_POLL_S = 0.25


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------


class CostModel:
    """Predicted per-point cost, in (dimensionless) model units.

    For collective points the analytic model's predicted latency is the
    cost — the same family of T(eta, p) curves the tuner ranks algorithms
    with, so relative magnitudes are meaningful.  When the point's
    algorithm has no closed-form model, an attached
    :class:`repro.serve.QueryEngine` (a compiled decision table) is asked
    which algorithm the tuner *would* run there and that one is priced
    instead — a wrong-by-a-constant stand-in beats no estimate.  Anything
    still unpriceable falls back to ``procs * nbytes`` scaled by a
    per-lane factor.  Scheduling quality degrades gracefully with cost
    quality; correctness never depends on it.
    """

    #: relative transfer-cost weight per transport lane for the fallback
    #: heuristic (shm double-copies; mapped windows copy pin-free)
    LANE_FACTOR = {"cma": 1.0, "shm": 1.4, "xpmem": 0.8}

    def __init__(self, engine: Any = None):
        self.engine = engine
        self._models: Dict[Any, Any] = {}
        self._memo: Dict[Any, float] = {}

    def _model_for(self, arch: Any):
        key = arch if isinstance(arch, str) else id(arch)
        model = self._models.get(key)
        if model is None:
            from repro.core.model import AnalyticModel

            if isinstance(arch, str):
                from repro.machine import get_arch

                arch = get_arch(arch)
            model = AnalyticModel(arch)
            self._models[key] = model
        return model

    def heuristic(self, procs: int, nbytes: int, lane: str = "cma") -> float:
        return (
            max(int(procs), 1)
            * max(int(nbytes), 1)
            * 1e-3
            * self.LANE_FACTOR.get(lane, 1.0)
        )

    def cost(self, pt: Any) -> float:
        """Predicted cost of one sweep point (never raises)."""
        coll = getattr(pt, "collective", None)
        if coll is None:
            return self._generic_cost(pt)
        arch = getattr(pt, "arch", None)
        memo_key = (
            coll,
            getattr(pt, "algorithm", None),
            arch if isinstance(arch, str) else id(arch),
            getattr(pt, "procs", 0),
            getattr(pt, "eta", 0),
            getattr(pt, "params", ()),
            getattr(pt, "lane", "cma"),
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        cost = self._collective_cost(pt)
        self._memo[memo_key] = cost
        return cost

    def _collective_cost(self, pt: Any) -> float:
        procs = getattr(pt, "procs", 2)
        eta = getattr(pt, "eta", 4096)
        try:
            model = self._model_for(pt.arch)
        except Exception:
            return self.heuristic(procs, eta, getattr(pt, "lane", "cma"))
        try:
            return float(
                model.predict(
                    pt.collective, pt.algorithm, procs, eta,
                    **dict(getattr(pt, "params", ()) or ()),
                )
            )
        except (KeyError, TypeError, ValueError):
            pass
        if self.engine is not None:
            # No closed form for this algorithm: price the one the
            # compiled table would choose at this (collective, eta, p).
            try:
                dec = self.engine.lookup(pt.collective, eta, procs)
                return float(
                    model.predict(
                        pt.collective, dec.algorithm, procs, eta,
                        **dict(getattr(dec, "params", ()) or ()),
                    )
                )
            except (KeyError, TypeError, ValueError):
                pass
        return self.heuristic(procs, eta, getattr(pt, "lane", "cma"))

    def _generic_cost(self, pt: Any) -> float:
        """Non-collective points (microbenches): size-ish kwargs if any."""
        kwargs = dict(getattr(pt, "kwargs", ()) or ())
        nbytes = kwargs.get("nbytes") or kwargs.get("eta") or 4096
        readers = kwargs.get("readers") or kwargs.get("procs") or 1
        try:
            return self.heuristic(int(readers), int(nbytes))
        except (TypeError, ValueError):
            return 1.0


# --------------------------------------------------------------------------
# Chunking
# --------------------------------------------------------------------------


class Chunk:
    """A dispatch unit: consecutive same-group point indices."""

    __slots__ = ("cid", "group", "indices", "cost", "stolen")

    def __init__(self, cid: int, group: Any, indices: Tuple[int, ...], cost: float):
        self.cid = cid
        self.group = group
        self.indices = indices
        self.cost = cost
        self.stolen = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk({self.cid}, n={len(self.indices)}, cost={self.cost:.1f})"


class _GroupPlan:
    """All of one group's chunks, dispatched in order by one worker."""

    __slots__ = ("group", "chunks", "cost", "stolen", "busy")

    def __init__(self, group: Any, chunks: "deque[Chunk]", cost: float):
        self.group = group
        self.chunks = chunks
        self.cost = cost
        self.stolen = False  # picked up via a steal (rides into chunk stats)
        self.busy = False    # has an in-flight chunk; never stealable


def build_chunks(
    costs: Sequence[float],
    groups: Optional[Sequence[Any]],
    workers: int,
    oversub: int = OVERSUB,
    max_chunk: int = MAX_CHUNK,
) -> List[_GroupPlan]:
    """Split points into cost-balanced chunks, grouped and ordered.

    Points are partitioned by ``groups`` (input order preserved within a
    group — the adjacency warm-node reuse depends on); each group is cut
    into chunks whose predicted cost targets ``total / (workers *
    oversub)``, capped at ``max_chunk`` points.  With ``groups=None``
    every chunk becomes its own group, i.e. unrestricted stealing.
    Returned plans are sorted biggest-cost-first (ties: first appearance),
    so the LPT assignment below sees the expensive tail before the filler.
    """
    n = len(costs)
    by_group: Dict[Any, List[int]] = {}
    order: List[Any] = []
    if groups is None:
        by_group[None] = list(range(n))
        order.append(None)
    else:
        for i, g in enumerate(groups):
            bucket = by_group.get(g)
            if bucket is None:
                by_group[g] = bucket = []
                order.append(g)
            bucket.append(i)
    total = float(sum(costs))
    target = total / max(workers * oversub, 1) if total > 0 else 0.0

    plans: List[_GroupPlan] = []
    cid = 0
    for g in order:
        chunks: "deque[Chunk]" = deque()
        run: List[int] = []
        acc = 0.0
        gcost = 0.0
        for i in by_group[g]:
            run.append(i)
            acc += costs[i]
            if len(run) >= max_chunk or (target > 0 and acc >= target):
                chunks.append(Chunk(cid, g, tuple(run), acc))
                cid += 1
                gcost += acc
                run, acc = [], 0.0
        if run:
            chunks.append(Chunk(cid, g, tuple(run), acc))
            cid += 1
            gcost += acc
        if groups is None:
            # Ungrouped sweep: one pseudo-group per chunk, so the router
            # may steal at chunk granularity.
            for ch in chunks:
                ch.group = ("_chunk", ch.cid)
                plans.append(_GroupPlan(ch.group, deque([ch]), ch.cost))
        else:
            plans.append(_GroupPlan(g, chunks, gcost))
    plans.sort(key=lambda p: (-p.cost, p.chunks[0].indices[0] if p.chunks else 0))
    return plans


def _pool_key_of(group: Any) -> Optional[tuple]:
    """The warm-node pool key embedded in a sweep group key.

    :func:`repro.exec.sweep._pool_group_key` builds ``(arch_name, procs,
    verify, trace, not warm, lane)`` — the first four fields are exactly
    :class:`~repro.core.runner.NodePool`'s entry key.  Foreign group keys
    simply don't get warm-affinity hints.
    """
    if isinstance(group, tuple) and len(group) >= 4:
        return tuple(group[:4])
    return None


# --------------------------------------------------------------------------
# Router: sticky assignment + whole-group stealing
# --------------------------------------------------------------------------


class _Router:
    """Parent-side dispatch state enforcing the no-concurrent-group rule.

    Groups are LPT-assigned (descending cost onto the least-loaded
    worker), except that a worker whose warm-node pool already holds the
    group's key is preferred while its load stays under 1.5x the mean —
    sticky routing pays for itself only until it unbalances the sweep.
    ``next_for`` dispatches from the worker's own front group (sticky:
    a group's chunks keep landing on one worker back-to-back); a worker
    with an empty queue steals a whole non-busy group from the tail of
    the most-loaded victim.
    """

    def __init__(
        self,
        plans: List[_GroupPlan],
        workers: int,
        stealing: bool = True,
        warm_hint: Optional[Dict[int, Sequence[tuple]]] = None,
    ):
        self.stealing = stealing
        self.steals = 0
        self.queues: List["deque[_GroupPlan]"] = [deque() for _ in range(workers)]
        self._busy: Dict[int, _GroupPlan] = {}
        loads = [0.0] * workers
        total = sum(p.cost for p in plans)
        mean = total / workers if workers else 0.0
        warm_hint = warm_hint or {}
        for plan in plans:
            wid = None
            pkey = _pool_key_of(plan.group)
            if pkey is not None:
                warm_wids = [
                    w for w, keys in warm_hint.items()
                    if w < workers and pkey in (keys or ())
                ]
                if warm_wids:
                    w = min(warm_wids, key=lambda w: (loads[w], w))
                    if mean <= 0 or loads[w] + plan.cost <= 1.5 * mean:
                        wid = w
            if wid is None:
                wid = min(range(workers), key=lambda w: (loads[w], w))
            loads[wid] += plan.cost
            self.queues[wid].append(plan)

    def _steal_into(self, wid: int) -> bool:
        """Move one stealable group from the richest victim to ``wid``."""
        best: Optional[Tuple[float, int, _GroupPlan]] = None
        for v, q in enumerate(self.queues):
            if v == wid:
                continue
            for plan in reversed(q):  # tail = cheapest-assigned first
                if plan.busy or not plan.chunks:
                    continue
                remaining = sum(c.cost for c in q if not c.busy)
                if best is None or remaining > best[0]:
                    best = (remaining, v, plan)
                break
        if best is None:
            return False
        _, victim, plan = best
        self.queues[victim].remove(plan)
        plan.stolen = True
        self.steals += 1
        self.queues[wid].append(plan)
        return True

    def next_for(self, wid: int) -> Optional[Chunk]:
        """The next chunk ``wid`` should run, stealing if drained."""
        q = self.queues[wid]
        while True:
            while q and not q[0].chunks:
                q.popleft()
            if not q:
                if not (self.stealing and self._steal_into(wid)):
                    return None
                continue
            plan = q[0]
            ch = plan.chunks.popleft()
            plan.busy = True
            ch.stolen = plan.stolen
            if not plan.chunks:
                q.popleft()  # exhausted once this chunk lands
            self._busy[wid] = plan
            return ch

    def on_done(self, wid: int) -> None:
        plan = self._busy.pop(wid, None)
        if plan is not None:
            plan.busy = False


# --------------------------------------------------------------------------
# Stats
# --------------------------------------------------------------------------


@dataclass
class SchedStats:
    """What one scheduled run did — folded into the sweep report line."""

    points: int = 0
    chunks: int = 0
    steals: int = 0
    workers: int = 1
    pooled: bool = False
    chunk_sizes: List[int] = field(default_factory=list)
    predicted_cost: float = 0.0
    #: summed worker-side chunk walls (compute seconds, not wall-clock)
    chunk_wall_s: float = 0.0
    #: scale-normalised |predicted - actual| summed over chunks, seconds
    cost_abs_err_s: float = 0.0
    #: points recomputed inline after a pool failure
    fallback_points: int = 0
    #: per-chunk timeline records (only when profiling was requested)
    profile: Optional[List[dict]] = None

    @property
    def cost_err_pct(self) -> Optional[float]:
        """Weighted predicted-vs-actual cost error, best scale applied.

        Cost units are model-us, walls are host seconds, so the scale
        between them is fitted (total actual / total predicted) and the
        error prices only *mis-ranking*: 0% means the model ordered every
        chunk perfectly, 100% means predictions were uninformative.
        """
        if self.chunk_wall_s <= 0:
            return None
        return 100.0 * self.cost_abs_err_s / self.chunk_wall_s

    def note_chunk(
        self,
        worker: int,
        chunk: Chunk,
        wall_s: float,
        start_s: float,
        end_s: float,
        profiling: bool,
    ) -> None:
        self.chunks += 1
        self.chunk_sizes.append(len(chunk.indices))
        if profiling:
            if self.profile is None:
                self.profile = []
            self.profile.append(
                {
                    "worker": worker,
                    "chunk": chunk.cid,
                    "group": repr(chunk.group),
                    "points": len(chunk.indices),
                    "predicted_cost": round(chunk.cost, 3),
                    "stolen": chunk.stolen,
                    "start_s": round(start_s, 6),
                    "end_s": round(end_s, 6),
                    "wall_s": round(wall_s, 6),
                }
            )

    def finalize(self, records: List[Tuple[float, float]]) -> None:
        """Fit the cost scale and accumulate the ranking error."""
        total_pred = sum(p for p, _ in records)
        total_wall = sum(w for _, w in records)
        self.predicted_cost = total_pred
        self.chunk_wall_s = total_wall
        if total_pred > 0 and total_wall > 0:
            scale = total_wall / total_pred
            self.cost_abs_err_s = sum(
                abs(p * scale - w) for p, w in records
            )


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


def _worker_warm_keys() -> tuple:
    """This worker's warm-node pool keys (best-effort, never raises)."""
    try:
        from repro.core.runner import default_pool

        return default_pool().warm_keys()
    except Exception:
        return ()


def _worker_main(wid: int, inbox, outbox) -> None:
    while True:
        msg = inbox.get()
        if msg is None:
            return
        epoch, cid, fn, pts = msg
        t0 = time.monotonic()
        try:
            vals = [fn(p) for p in pts]
            t1 = time.monotonic()
            # Pre-pickle so an unpicklable value surfaces as an error
            # message instead of killing the queue's feeder thread (which
            # would hang the parent until dead-worker detection).
            buf = pickle.dumps(vals, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"worker {wid} failed: {exc!r}")
            try:
                outbox.put(("err", epoch, wid, cid, exc))
            except Exception:
                return  # queue gone: parent is tearing us down
            continue
        outbox.put(("done", epoch, wid, cid, buf, t0, t1, _worker_warm_keys()))


class _SchedBroken(RuntimeError):
    """Internal: a worker died mid-run (triggers inline salvage)."""


# --------------------------------------------------------------------------
# The pool
# --------------------------------------------------------------------------


class StickyPool:
    """Persistent addressable workers for sticky, stealing dispatch.

    Unlike ``ProcessPoolExecutor`` the parent decides *which* worker gets
    each chunk, which is what warm-node affinity needs; workers keep
    their module-level :class:`~repro.core.runner.NodePool` warm across
    sweeps and report its keys with every completion, so the next sweep's
    router can route same-keyed groups back.  All failure modes degrade
    to inline recomputation of whatever is missing — never to a wrong or
    partial result.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        import multiprocessing as mp

        if workers < 2:
            raise ValueError("StickyPool needs >= 2 workers (run inline instead)")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        ctx = mp.get_context(start_method)
        self.workers = workers
        self.broken = False
        self._epoch = 0
        #: wid -> last reported warm-node pool keys
        self.warm_keys: Dict[int, tuple] = {}
        self._inboxes = [ctx.SimpleQueue() for _ in range(workers)]
        self._outbox = ctx.Queue()
        self._procs = []
        try:
            for wid in range(workers):
                p = ctx.Process(
                    target=_worker_main,
                    args=(wid, self._inboxes[wid], self._outbox),
                    daemon=True,
                    name=f"repro-sched-{wid}",
                )
                p.start()
                self._procs.append(p)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the workers; safe to call repeatedly."""
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        self._procs = []
        try:
            self._outbox.close()
        except Exception:
            pass

    def __enter__(self) -> "StickyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        costs: Optional[Sequence[float]] = None,
        groups: Optional[Sequence[Any]] = None,
        stealing: bool = True,
        on_result: Optional[Callable[[int, Any], None]] = None,
        profile: bool = False,
    ) -> Tuple[List[Any], SchedStats]:
        """Run ``fn`` over ``points``; returns (ordered results, stats).

        ``on_result(i, value)`` fires as each point's value arrives
        (arbitrary order) — the overlapped-cache-write hook.  Exceptions
        raised by ``fn`` propagate.  A worker death falls back to inline
        recomputation of the missing points.
        """
        points = list(points)
        n = len(points)
        if costs is None:
            costs = [1.0] * n
        stats = SchedStats(points=n, workers=self.workers, pooled=True)
        if n == 0:
            return [], stats
        if self.broken:
            stats.pooled = False
            return _run_inline(
                fn, points, costs, groups, on_result, profile, stats
            )
        plans = build_chunks(costs, groups, self.workers)
        router = _Router(
            plans, self.workers, stealing=stealing, warm_hint=self.warm_keys
        )
        total_chunks = sum(len(p.chunks) for p in plans)
        results: List[Any] = [None] * n
        got = [False] * n
        records: List[Tuple[float, float]] = []
        self._epoch += 1
        epoch = self._epoch
        t_base = time.monotonic()
        in_flight: Dict[int, Chunk] = {}

        def dispatch(wid: int) -> None:
            ch = router.next_for(wid)
            if ch is None:
                return
            self._inboxes[wid].put(
                (epoch, ch.cid, fn, [points[i] for i in ch.indices])
            )
            in_flight[wid] = ch

        try:
            for wid in range(self.workers):
                dispatch(wid)
            done_chunks = 0
            while done_chunks < total_chunks:
                try:
                    msg = self._outbox.get(timeout=_POLL_S)
                except _queue.Empty:
                    if any(not p.is_alive() for p in self._procs):
                        raise _SchedBroken("scheduler worker died") from None
                    continue
                tag = msg[0]
                if tag == "done":
                    _, ep, wid, cid, buf, t0w, t1w, warm = msg
                    if ep != epoch:
                        continue  # stale chunk from an aborted run
                    ch = in_flight.pop(wid)
                    vals = pickle.loads(buf)
                    for i, v in zip(ch.indices, vals):
                        results[i] = v
                        got[i] = True
                        if on_result is not None:
                            on_result(i, v)
                    self.warm_keys[wid] = warm
                    wall = t1w - t0w
                    records.append((ch.cost, wall))
                    stats.note_chunk(
                        wid, ch, wall, t0w - t_base, t1w - t_base, profile
                    )
                    done_chunks += 1
                    router.on_done(wid)
                    dispatch(wid)
                elif tag == "err":
                    _, ep, wid, cid, exc = msg
                    if ep != epoch:
                        continue
                    in_flight.pop(wid, None)
                    router.on_done(wid)
                    raise exc
        except _SchedBroken:
            self.broken = True
            self.close()
            # Salvage: recompute only what's missing, inline, in order.
            for i in range(n):
                if not got[i]:
                    v = fn(points[i])
                    results[i] = v
                    if on_result is not None:
                        on_result(i, v)
                    stats.fallback_points += 1
        stats.steals = router.steals
        stats.finalize(records)
        return results, stats


# --------------------------------------------------------------------------
# Inline execution (single CPU, pool unavailable, or salvage)
# --------------------------------------------------------------------------


def _run_inline(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    costs: Sequence[float],
    groups: Optional[Sequence[Any]],
    on_result: Optional[Callable[[int, Any], None]],
    profile: bool,
    stats: SchedStats,
) -> Tuple[List[Any], SchedStats]:
    """The same chunk plan executed in-process, big groups first."""
    n = len(points)
    plans = build_chunks(costs, groups, workers=1)
    results: List[Any] = [None] * n
    records: List[Tuple[float, float]] = []
    t_base = time.monotonic()
    for plan in plans:
        for ch in plan.chunks:
            t0 = time.monotonic()
            for i in ch.indices:
                v = fn(points[i])
                results[i] = v
                if on_result is not None:
                    on_result(i, v)
            t1 = time.monotonic()
            wall = t1 - t0
            records.append((ch.cost, wall))
            stats.note_chunk(0, ch, wall, t0 - t_base, t1 - t_base, profile)
    stats.finalize(records)
    return results, stats


def run_scheduled(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    workers: int = 1,
    costs: Optional[Sequence[float]] = None,
    groups: Optional[Sequence[Any]] = None,
    stealing: bool = True,
    on_result: Optional[Callable[[int, Any], None]] = None,
    profile: bool = False,
    pool: Optional[StickyPool] = None,
) -> Tuple[List[Any], SchedStats]:
    """One-shot scheduled run: pooled when it can win, else inline.

    ``pool`` lends a long-lived :class:`StickyPool` (the
    :class:`~repro.exec.context.ExecContext` owns one per session);
    without it a throwaway pool is created only when ``workers > 1``
    *and* the host actually has more than one usable CPU — on a one-CPU
    host process fan-out is pure IPC loss, so the cost model's cheapest
    plan is the inline one.
    """
    points = list(points)
    if costs is None:
        costs = [1.0] * len(points)
    if pool is not None and not pool.broken:
        return pool.run(
            fn, points, costs=costs, groups=groups, stealing=stealing,
            on_result=on_result, profile=profile,
        )
    workers = min(workers, len(points))
    if workers > 1 and usable_cpus() > 1:
        try:
            own = StickyPool(workers)
        except Exception:
            own = None
        if own is not None:
            try:
                return own.run(
                    fn, points, costs=costs, groups=groups,
                    stealing=stealing, on_result=on_result, profile=profile,
                )
            finally:
                own.close()
    stats = SchedStats(points=len(points), workers=1, pooled=False)
    return _run_inline(fn, points, costs, groups, on_result, profile, stats)
