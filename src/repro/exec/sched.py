"""Work-stealing sweep scheduler with cost-model chunking and sticky routing.

The legacy fan-out (:func:`repro.exec.pool.map_points`) slices a sweep
into fixed-size chunks and round-robins them over a
``ProcessPoolExecutor``: a long-tail point (a large-message contended
convoy, per Fig 7 of the source paper) parks a whole chunk behind it
while other workers sit idle, and a point lands on whichever worker the
executor picks — never deliberately on the one whose warm
:class:`~repro.core.runner.NodePool` already holds its node.

This module replaces that with three cooperating pieces:

* :class:`CostModel` — predicts a per-point cost, preferring the analytic
  latency model (:mod:`repro.core.model`) and, where a compiled decision
  table is available, :class:`repro.serve.QueryEngine` to resolve the
  algorithm actually being priced; unmodeled points fall back to a
  ``(procs, nbytes, lane)`` heuristic.  Costs only *order* work, they
  never change results.
* :func:`build_chunks` — adaptive chunking: points are grouped by their
  warm-node group key and split into chunks targeting ``total_cost /
  (workers * oversub)``, so a convoy-heavy point rides alone while
  trivially cheap points batch up; groups are dispatched biggest-first so
  the expensive tail starts immediately and small chunks back-fill.
* :class:`StickyPool` — persistent worker processes with *per-worker*
  inboxes (a plain ``ProcessPoolExecutor`` cannot address a specific
  worker, which sticky routing requires).  Groups are LPT-assigned to
  workers — preferring a worker whose last-reported
  :func:`~repro.core.runner.NodePool.warm_keys` already contain the
  group's pool key — and a drained worker steals **whole groups** from
  the tail of the most loaded victim.  A group with an in-flight chunk is
  never stolen, so a warm group never runs on two workers concurrently
  (``tests/test_sched.py`` asserts this), and within a group execution
  order is input order: exactly the adjacency the warm-node pool needs.

Results stream back as chunks complete (the ``on_result`` callback is how
:func:`repro.exec.sweep.sweep` overlaps cache writes with the remaining
compute) and are reassembled in input order, preserving the
serial == pooled == cached bit-identity contract: chunking, stealing and
routing change *where and when* a point runs, never its inputs — every
point still executes on a fresh-or-reset node.

On a host where the pool would lose (one usable CPU, or process start-up
denied), the same chunking/routing machinery runs inline in-process —
same results, same stats, no IPC tax.

**Supervision.**  The pool watches its workers, not just their pipes:

* every worker stamps a shared heartbeat slot before each point and
  reports which point it is on, so the parent distinguishes a *hung*
  worker (alive, no heartbeat progress for ``REPRO_HUNG_CHUNK_S``
  seconds while a chunk is in flight) from a *dead* one (``is_alive()``
  false) — a hung worker is SIGKILLed and treated as lost;
* results travel over per-worker *lock-free framed pipes* (a length
  prefix per pickled message, non-blocking parent reads): a SIGKILL
  landing mid-report can tear at most that worker's own trailing frame —
  never a lock another worker needs, which a shared queue could strand —
  and every complete frame the dying worker shipped is salvaged;
* a lost worker is respawned (fresh inbox and result pipe — a kill can
  strand the old queue's read lock or leave a torn frame) with
  exponential backoff, bounded by ``REPRO_SCHED_RESPAWNS`` total
  respawns per pool, and its unfinished chunk's points are re-dispatched;
* the point a worker was executing when it was lost takes a **poison
  strike**; at ``REPRO_POISON_STRIKES`` strikes the point is retried once
  in a sandboxed one-shot subprocess under a tight deadline, and if that
  also fails it is **quarantined**: its result slot becomes a
  :class:`PoisonedPoint` and the sweep completes without it instead of
  failing (the sweep report carries the quarantine);
* exhausting the respawn budget marks the pool broken and the missing
  points are recomputed inline, so a sweep always completes.

:class:`CircuitBreaker` is the systemic-failure ladder above all of
this: repeated pool-level breakage degrades the context's dispatch from
this scheduler to the legacy executor fan-out, and from there to inline
serial — each layer strictly simpler than the one it replaces.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec import chaos as _chaos

__all__ = [
    "CostModel",
    "SchedStats",
    "StickyPool",
    "Chunk",
    "CircuitBreaker",
    "PoisonedPoint",
    "build_chunks",
    "run_scheduled",
    "usable_cpus",
    "resolve_hung_s",
    "resolve_max_respawns",
    "resolve_poison_strikes",
]

#: Outstanding-chunk multiple the adaptive chunker targets per worker:
#: chunk cost aims at ``total / (workers * OVERSUB)`` so every worker has
#: slack to back-fill behind a straggler without drowning in dispatch.
OVERSUB = 4

#: Hard cap on points per chunk regardless of predicted cost.
MAX_CHUNK = 32

#: Parent poll interval while waiting on worker results (also the dead-
#: worker detection latency).
_POLL_S = 0.25


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


# --------------------------------------------------------------------------
# Supervision knobs
# --------------------------------------------------------------------------

ENV_HUNG_S = "REPRO_HUNG_CHUNK_S"
ENV_MAX_RESPAWNS = "REPRO_SCHED_RESPAWNS"
ENV_POISON_STRIKES = "REPRO_POISON_STRIKES"

#: a worker whose in-flight chunk shows no per-point heartbeat progress
#: for this long is declared hung and killed; generous by default — no
#: legitimate sweep point is minutes of wall time — and ``0`` disables.
DEFAULT_HUNG_S = 300.0

#: worker-loss blames before a point is sandboxed instead of re-pooled
DEFAULT_POISON_STRIKES = 2

#: wall-clock budget of the sandboxed one-shot retry of a poisoned point
SANDBOX_DEADLINE_S = 10.0


def resolve_hung_s(hung_s: Any = None) -> Optional[float]:
    """Explicit argument > ``REPRO_HUNG_CHUNK_S`` > 300 s; <= 0 disables."""
    if hung_s is None:
        raw = os.environ.get(ENV_HUNG_S, "").strip()
        if not raw:
            return DEFAULT_HUNG_S
        hung_s = raw
    try:
        hung_s = float(hung_s)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid hung-chunk timeout {hung_s!r} (set {ENV_HUNG_S} to "
            f"seconds; 0 disables)"
        ) from None
    return hung_s if hung_s > 0 else None


def resolve_max_respawns(max_respawns: Any, workers: int) -> int:
    """Explicit argument > ``REPRO_SCHED_RESPAWNS`` > ``4 * workers``."""
    if max_respawns is None:
        raw = os.environ.get(ENV_MAX_RESPAWNS, "").strip()
        if not raw:
            return 4 * max(int(workers), 1)
        max_respawns = raw
    try:
        return max(int(max_respawns), 0)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid respawn budget {max_respawns!r} (set {ENV_MAX_RESPAWNS} "
            f"to an integer)"
        ) from None


def resolve_poison_strikes(strikes: Any = None) -> int:
    """Explicit argument > ``REPRO_POISON_STRIKES`` > 2 (min 1)."""
    if strikes is None:
        raw = os.environ.get(ENV_POISON_STRIKES, "").strip()
        if not raw:
            return DEFAULT_POISON_STRIKES
        strikes = raw
    try:
        return max(int(strikes), 1)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid poison-strike count {strikes!r} (set "
            f"{ENV_POISON_STRIKES} to an integer >= 1)"
        ) from None


@dataclass(frozen=True)
class PoisonedPoint:
    """A sweep point quarantined by supervision instead of computed.

    Occupies the point's result slot so the sweep completes; the sweep
    layer skips cache/journal writes for it and counts it in the report.
    Only ever produced under worker loss (chaos, a genuinely crashing
    point) — default healthy runs never see one.
    """

    index: int
    strikes: int
    reason: str


class CircuitBreaker:
    """Systemic-failure ladder: ``sched`` → ``legacy`` → ``serial``.

    Worker-level trouble is absorbed by supervision (respawn, poison);
    the breaker counts *pool-level* failures — a :class:`StickyPool`
    breaking or refusing to start, the legacy executor breaking — and
    after ``threshold`` of them at a layer, permanently (for this
    context) degrades dispatch to the next simpler layer.  Inline serial
    is the floor: it cannot fail systemically, only per-point.
    """

    def __init__(self, threshold: int = 2):
        self.threshold = max(int(threshold), 1)
        self.sched_failures = 0
        self.legacy_failures = 0

    @property
    def state(self) -> str:
        if self.sched_failures < self.threshold:
            return "sched"
        if self.legacy_failures < self.threshold:
            return "legacy"
        return "serial"

    def record_sched_failure(self) -> None:
        self.sched_failures += 1

    def record_legacy_failure(self) -> None:
        self.legacy_failures += 1

    @property
    def tripped(self) -> bool:
        return self.state != "sched"

    def describe(self) -> str:
        return (
            f"breaker={self.state}"
            f" (sched_failures={self.sched_failures},"
            f" legacy_failures={self.legacy_failures})"
        )


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------


class CostModel:
    """Predicted per-point cost, in (dimensionless) model units.

    For collective points the analytic model's predicted latency is the
    cost — the same family of T(eta, p) curves the tuner ranks algorithms
    with, so relative magnitudes are meaningful.  When the point's
    algorithm has no closed-form model, an attached
    :class:`repro.serve.QueryEngine` (a compiled decision table) is asked
    which algorithm the tuner *would* run there and that one is priced
    instead — a wrong-by-a-constant stand-in beats no estimate.  Anything
    still unpriceable falls back to ``procs * nbytes`` scaled by a
    per-lane factor.  Scheduling quality degrades gracefully with cost
    quality; correctness never depends on it.
    """

    #: relative transfer-cost weight per transport lane for the fallback
    #: heuristic (shm double-copies; mapped windows copy pin-free)
    LANE_FACTOR = {"cma": 1.0, "shm": 1.4, "xpmem": 0.8}

    def __init__(self, engine: Any = None):
        self.engine = engine
        self._models: Dict[Any, Any] = {}
        self._memo: Dict[Any, float] = {}

    def _model_for(self, arch: Any):
        key = arch if isinstance(arch, str) else id(arch)
        model = self._models.get(key)
        if model is None:
            from repro.core.model import AnalyticModel

            if isinstance(arch, str):
                from repro.machine import get_arch

                arch = get_arch(arch)
            model = AnalyticModel(arch)
            self._models[key] = model
        return model

    def heuristic(self, procs: int, nbytes: int, lane: str = "cma") -> float:
        return (
            max(int(procs), 1)
            * max(int(nbytes), 1)
            * 1e-3
            * self.LANE_FACTOR.get(lane, 1.0)
        )

    def cost(self, pt: Any) -> float:
        """Predicted cost of one sweep point (never raises)."""
        coll = getattr(pt, "collective", None)
        if coll is None:
            return self._generic_cost(pt)
        arch = getattr(pt, "arch", None)
        memo_key = (
            coll,
            getattr(pt, "algorithm", None),
            arch if isinstance(arch, str) else id(arch),
            getattr(pt, "procs", 0),
            getattr(pt, "eta", 0),
            getattr(pt, "params", ()),
            getattr(pt, "lane", "cma"),
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        cost = self._collective_cost(pt)
        self._memo[memo_key] = cost
        return cost

    def _collective_cost(self, pt: Any) -> float:
        procs = getattr(pt, "procs", 2)
        eta = getattr(pt, "eta", 4096)
        try:
            model = self._model_for(pt.arch)
        except Exception:
            return self.heuristic(procs, eta, getattr(pt, "lane", "cma"))
        try:
            return float(
                model.predict(
                    pt.collective, pt.algorithm, procs, eta,
                    **dict(getattr(pt, "params", ()) or ()),
                )
            )
        except (KeyError, TypeError, ValueError):
            pass
        if self.engine is not None:
            # No closed form for this algorithm: price the one the
            # compiled table would choose at this (collective, eta, p).
            try:
                dec = self.engine.lookup(pt.collective, eta, procs)
                return float(
                    model.predict(
                        pt.collective, dec.algorithm, procs, eta,
                        **dict(getattr(dec, "params", ()) or ()),
                    )
                )
            except (KeyError, TypeError, ValueError):
                pass
        return self.heuristic(procs, eta, getattr(pt, "lane", "cma"))

    def _generic_cost(self, pt: Any) -> float:
        """Non-collective points (microbenches): size-ish kwargs if any."""
        kwargs = dict(getattr(pt, "kwargs", ()) or ())
        nbytes = kwargs.get("nbytes") or kwargs.get("eta") or 4096
        readers = kwargs.get("readers") or kwargs.get("procs") or 1
        try:
            return self.heuristic(int(readers), int(nbytes))
        except (TypeError, ValueError):
            return 1.0


# --------------------------------------------------------------------------
# Chunking
# --------------------------------------------------------------------------


class Chunk:
    """A dispatch unit: consecutive same-group point indices."""

    __slots__ = ("cid", "group", "indices", "cost", "stolen")

    def __init__(self, cid: int, group: Any, indices: Tuple[int, ...], cost: float):
        self.cid = cid
        self.group = group
        self.indices = indices
        self.cost = cost
        self.stolen = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Chunk({self.cid}, n={len(self.indices)}, cost={self.cost:.1f})"


class _GroupPlan:
    """All of one group's chunks, dispatched in order by one worker."""

    __slots__ = ("group", "chunks", "cost", "stolen", "busy")

    def __init__(self, group: Any, chunks: "deque[Chunk]", cost: float):
        self.group = group
        self.chunks = chunks
        self.cost = cost
        self.stolen = False  # picked up via a steal (rides into chunk stats)
        self.busy = False    # has an in-flight chunk; never stealable


def build_chunks(
    costs: Sequence[float],
    groups: Optional[Sequence[Any]],
    workers: int,
    oversub: int = OVERSUB,
    max_chunk: int = MAX_CHUNK,
) -> List[_GroupPlan]:
    """Split points into cost-balanced chunks, grouped and ordered.

    Points are partitioned by ``groups`` (input order preserved within a
    group — the adjacency warm-node reuse depends on); each group is cut
    into chunks whose predicted cost targets ``total / (workers *
    oversub)``, capped at ``max_chunk`` points.  With ``groups=None``
    every chunk becomes its own group, i.e. unrestricted stealing.
    Returned plans are sorted biggest-cost-first (ties: first appearance),
    so the LPT assignment below sees the expensive tail before the filler.
    """
    n = len(costs)
    by_group: Dict[Any, List[int]] = {}
    order: List[Any] = []
    if groups is None:
        by_group[None] = list(range(n))
        order.append(None)
    else:
        for i, g in enumerate(groups):
            bucket = by_group.get(g)
            if bucket is None:
                by_group[g] = bucket = []
                order.append(g)
            bucket.append(i)
    total = float(sum(costs))
    target = total / max(workers * oversub, 1) if total > 0 else 0.0

    plans: List[_GroupPlan] = []
    cid = 0
    for g in order:
        chunks: "deque[Chunk]" = deque()
        run: List[int] = []
        acc = 0.0
        gcost = 0.0
        for i in by_group[g]:
            run.append(i)
            acc += costs[i]
            if len(run) >= max_chunk or (target > 0 and acc >= target):
                chunks.append(Chunk(cid, g, tuple(run), acc))
                cid += 1
                gcost += acc
                run, acc = [], 0.0
        if run:
            chunks.append(Chunk(cid, g, tuple(run), acc))
            cid += 1
            gcost += acc
        if groups is None:
            # Ungrouped sweep: one pseudo-group per chunk, so the router
            # may steal at chunk granularity.
            for ch in chunks:
                ch.group = ("_chunk", ch.cid)
                plans.append(_GroupPlan(ch.group, deque([ch]), ch.cost))
        else:
            plans.append(_GroupPlan(g, chunks, gcost))
    plans.sort(key=lambda p: (-p.cost, p.chunks[0].indices[0] if p.chunks else 0))
    return plans


def _pool_key_of(group: Any) -> Optional[tuple]:
    """The warm-node pool key embedded in a sweep group key.

    :func:`repro.exec.sweep._pool_group_key` builds ``(arch_name, procs,
    verify, trace, not warm, lane)`` — the first four fields are exactly
    :class:`~repro.core.runner.NodePool`'s entry key.  Foreign group keys
    simply don't get warm-affinity hints.
    """
    if isinstance(group, tuple) and len(group) >= 4:
        return tuple(group[:4])
    return None


# --------------------------------------------------------------------------
# Router: sticky assignment + whole-group stealing
# --------------------------------------------------------------------------


class _Router:
    """Parent-side dispatch state enforcing the no-concurrent-group rule.

    Groups are LPT-assigned (descending cost onto the least-loaded
    worker), except that a worker whose warm-node pool already holds the
    group's key is preferred while its load stays under 1.5x the mean —
    sticky routing pays for itself only until it unbalances the sweep.
    ``next_for`` dispatches from the worker's own front group (sticky:
    a group's chunks keep landing on one worker back-to-back); a worker
    with an empty queue steals a whole non-busy group from the tail of
    the most-loaded victim.
    """

    def __init__(
        self,
        plans: List[_GroupPlan],
        workers: int,
        stealing: bool = True,
        warm_hint: Optional[Dict[int, Sequence[tuple]]] = None,
    ):
        self.stealing = stealing
        self.steals = 0
        self.queues: List["deque[_GroupPlan]"] = [deque() for _ in range(workers)]
        self._busy: Dict[int, _GroupPlan] = {}
        loads = [0.0] * workers
        total = sum(p.cost for p in plans)
        mean = total / workers if workers else 0.0
        warm_hint = warm_hint or {}
        for plan in plans:
            wid = None
            pkey = _pool_key_of(plan.group)
            if pkey is not None:
                warm_wids = [
                    w for w, keys in warm_hint.items()
                    if w < workers and pkey in (keys or ())
                ]
                if warm_wids:
                    w = min(warm_wids, key=lambda w: (loads[w], w))
                    if mean <= 0 or loads[w] + plan.cost <= 1.5 * mean:
                        wid = w
            if wid is None:
                wid = min(range(workers), key=lambda w: (loads[w], w))
            loads[wid] += plan.cost
            self.queues[wid].append(plan)

    def _steal_into(self, wid: int) -> bool:
        """Move one stealable group from the richest victim to ``wid``."""
        best: Optional[Tuple[float, int, _GroupPlan]] = None
        for v, q in enumerate(self.queues):
            if v == wid:
                continue
            for plan in reversed(q):  # tail = cheapest-assigned first
                if plan.busy or not plan.chunks:
                    continue
                remaining = sum(c.cost for c in q if not c.busy)
                if best is None or remaining > best[0]:
                    best = (remaining, v, plan)
                break
        if best is None:
            return False
        _, victim, plan = best
        self.queues[victim].remove(plan)
        plan.stolen = True
        self.steals += 1
        self.queues[wid].append(plan)
        return True

    def next_for(self, wid: int) -> Optional[Chunk]:
        """The next chunk ``wid`` should run, stealing if drained."""
        q = self.queues[wid]
        while True:
            while q and not q[0].chunks:
                q.popleft()
            if not q:
                if not (self.stealing and self._steal_into(wid)):
                    return None
                continue
            plan = q[0]
            ch = plan.chunks.popleft()
            plan.busy = True
            ch.stolen = plan.stolen
            if not plan.chunks:
                q.popleft()  # exhausted once this chunk lands
            self._busy[wid] = plan
            return ch

    def on_done(self, wid: int) -> None:
        plan = self._busy.pop(wid, None)
        if plan is not None:
            plan.busy = False


# --------------------------------------------------------------------------
# Stats
# --------------------------------------------------------------------------


@dataclass
class SchedStats:
    """What one scheduled run did — folded into the sweep report line."""

    points: int = 0
    chunks: int = 0
    steals: int = 0
    workers: int = 1
    pooled: bool = False
    chunk_sizes: List[int] = field(default_factory=list)
    predicted_cost: float = 0.0
    #: summed worker-side chunk walls (compute seconds, not wall-clock)
    chunk_wall_s: float = 0.0
    #: scale-normalised |predicted - actual| summed over chunks, seconds
    cost_abs_err_s: float = 0.0
    #: points recomputed inline after a pool failure
    fallback_points: int = 0
    #: workers respawned after dying or being killed as hung
    respawns: int = 0
    #: workers SIGKILLed by hung-chunk detection
    hung_kills: int = 0
    #: poisoned points rescued by the sandboxed one-shot retry
    sandbox_rescues: int = 0
    #: points quarantined as :class:`PoisonedPoint` (result slot filled
    #: with the marker, sweep completes without them)
    poisoned: int = 0
    poisoned_indices: List[int] = field(default_factory=list)
    #: per-chunk timeline records (only when profiling was requested)
    profile: Optional[List[dict]] = None

    @property
    def cost_err_pct(self) -> Optional[float]:
        """Weighted predicted-vs-actual cost error, best scale applied.

        Cost units are model-us, walls are host seconds, so the scale
        between them is fitted (total actual / total predicted) and the
        error prices only *mis-ranking*: 0% means the model ordered every
        chunk perfectly, 100% means predictions were uninformative.
        """
        if self.chunk_wall_s <= 0:
            return None
        return 100.0 * self.cost_abs_err_s / self.chunk_wall_s

    def note_chunk(
        self,
        worker: int,
        chunk: Chunk,
        wall_s: float,
        start_s: float,
        end_s: float,
        profiling: bool,
    ) -> None:
        self.chunks += 1
        self.chunk_sizes.append(len(chunk.indices))
        if profiling:
            if self.profile is None:
                self.profile = []
            self.profile.append(
                {
                    "worker": worker,
                    "chunk": chunk.cid,
                    "group": repr(chunk.group),
                    "points": len(chunk.indices),
                    "predicted_cost": round(chunk.cost, 3),
                    "stolen": chunk.stolen,
                    "start_s": round(start_s, 6),
                    "end_s": round(end_s, 6),
                    "wall_s": round(wall_s, 6),
                }
            )

    def finalize(self, records: List[Tuple[float, float]]) -> None:
        """Fit the cost scale and accumulate the ranking error."""
        total_pred = sum(p for p, _ in records)
        total_wall = sum(w for _, w in records)
        self.predicted_cost = total_pred
        self.chunk_wall_s = total_wall
        if total_pred > 0 and total_wall > 0:
            scale = total_wall / total_pred
            self.cost_abs_err_s = sum(
                abs(p * scale - w) for p, w in records
            )


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


#: result-pipe frame header: u32 little-endian payload length.  Framing
#: (rather than a shared ``mp.Queue``) is what makes worker reports safe
#: against SIGKILL: a kill mid-write tears only the dying worker's own
#: trailing frame, which the parent simply never parses — a shared locked
#: queue would instead strand its write lock and deadlock every survivor.
_FRAME_HDR = struct.Struct("<I")


def _send_frame(fd: int, msg: tuple) -> bool:
    """Ship one framed message up the worker's result pipe.

    False means the parent closed its read end (teardown): the worker
    should exit quietly rather than retry.
    """
    buf = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(_FRAME_HDR.pack(len(buf)) + buf)
    try:
        while view:
            n = os.write(fd, view)
            view = view[n:]
    except OSError:
        return False
    return True


def _worker_warm_keys() -> tuple:
    """This worker's warm-node pool keys (best-effort, never raises)."""
    try:
        from repro.core.runner import default_pool

        return default_pool().warm_keys()
    except Exception:
        return ()


def _chaos_point(cst) -> None:
    """Worker-side chaos draw around one point: kill or stall this worker.

    Only scheduler worker processes draw here — the parent, inline
    salvage, and the poison-retry sandbox never do, so chaos is always
    survivable by the supervision layer above it.
    """
    spec = cst.draw("point")
    if spec is None:
        return
    if spec.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "stall":
        time.sleep(spec.resolved_factor)


def _worker_main(wid: int, inbox, out_fd, hb=None, cur=None) -> None:
    _chaos.set_role(f"w{wid}")
    while True:
        msg = inbox.get()
        if msg is None:
            return
        epoch, cid, fn, pts, idxs = msg
        t0 = time.monotonic()
        try:
            cst = _chaos.state()
            vals = []
            for k, p in enumerate(pts):
                # Heartbeat + blame slot: the parent reads these to tell a
                # hung worker from a busy one, and to know *which* point a
                # lost worker was on (poison accounting).
                if hb is not None:
                    hb[wid] = time.monotonic()
                if cur is not None:
                    cur[wid] = idxs[k] if idxs is not None else -1
                if cst is not None:
                    _chaos_point(cst)
                vals.append(fn(p))
            if cur is not None:
                cur[wid] = -1
            t1 = time.monotonic()
            # Pre-pickle so an unpicklable value surfaces as an error
            # message instead of killing the queue's feeder thread (which
            # would hang the parent until dead-worker detection).
            buf = pickle.dumps(vals, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"worker {wid} failed: {exc!r}")
            if not _send_frame(out_fd, ("err", epoch, wid, cid, exc)):
                return  # pipe gone: parent is tearing us down
            continue
        if not _send_frame(
            out_fd,
            ("done", epoch, wid, cid, buf, t0, t1, _worker_warm_keys(), idxs),
        ):
            return


def _sandbox_main(conn, fn, point) -> None:
    """One-shot sandbox body: compute the point, ship the value, exit."""
    try:
        buf = pickle.dumps(fn(point), protocol=pickle.HIGHEST_PROTOCOL)
        conn.send(("ok", buf))
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        try:
            conn.send(("err", repr(exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _SchedBroken(RuntimeError):
    """Internal: the pool is unrecoverable (triggers inline salvage)."""


# --------------------------------------------------------------------------
# The pool
# --------------------------------------------------------------------------


class StickyPool:
    """Persistent addressable workers for sticky, stealing dispatch.

    Unlike ``ProcessPoolExecutor`` the parent decides *which* worker gets
    each chunk, which is what warm-node affinity needs; workers keep
    their module-level :class:`~repro.core.runner.NodePool` warm across
    sweeps and report its keys with every completion, so the next sweep's
    router can route same-keyed groups back.  All failure modes degrade
    to inline recomputation of whatever is missing — never to a wrong or
    partial result.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        hung_s: Any = None,
        max_respawns: Any = None,
        poison_strikes: Any = None,
        sandbox_deadline_s: float = SANDBOX_DEADLINE_S,
    ):
        import multiprocessing as mp

        if workers < 2:
            raise ValueError("StickyPool needs >= 2 workers (run inline instead)")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        ctx = mp.get_context(start_method)
        self._mp_ctx = ctx
        self.workers = workers
        self.broken = False
        self.hung_s = resolve_hung_s(hung_s)
        self.max_respawns = resolve_max_respawns(max_respawns, workers)
        self.poison_strikes = resolve_poison_strikes(poison_strikes)
        self.sandbox_deadline_s = float(sandbox_deadline_s)
        #: workers respawned over this pool's lifetime (budget consumed)
        self.respawns = 0
        self._respawn_attempts = [0] * workers
        self._epoch = 0
        #: wid -> last reported warm-node pool keys
        self.warm_keys: Dict[int, tuple] = {}
        #: lock-free shared slots: last per-point heartbeat and the global
        #: index of the point each worker is currently executing (-1 idle)
        self._hb = ctx.Array("d", workers, lock=False)
        self._cur = ctx.Array("l", workers, lock=False)
        for wid in range(workers):
            self._cur[wid] = -1
        self._inboxes = [ctx.SimpleQueue() for _ in range(workers)]
        #: per-worker result pipes: read fd (non-blocking, parent side)
        #: and a reassembly buffer for partially-arrived frames
        self._rfds: List[Optional[int]] = [None] * workers
        self._rbufs: List[bytearray] = [bytearray() for _ in range(workers)]
        self._procs = []
        try:
            for wid in range(workers):
                self._procs.append(self._spawn(wid))
        except BaseException:
            self.close()
            raise

    def _spawn(self, wid: int):
        # Fresh result pipe per (re)spawn: a predecessor's torn trailing
        # frame must never prefix the new worker's stream.  The write end
        # is closed in the parent immediately after the fork, so exactly
        # one process ever holds it — later-forked workers cannot inherit
        # it and keep a dead sibling's pipe half-open.
        rfd, wfd = os.pipe()
        os.set_blocking(rfd, False)
        old = self._rfds[wid]
        if old is not None:
            try:
                os.close(old)
            except OSError:
                pass
        self._rfds[wid] = rfd
        self._rbufs[wid] = bytearray()
        try:
            p = self._mp_ctx.Process(
                target=_worker_main,
                args=(wid, self._inboxes[wid], wfd, self._hb, self._cur),
                daemon=True,
                name=f"repro-sched-{wid}",
            )
            p.start()
        finally:
            try:
                os.close(wfd)
            except OSError:
                pass
        return p

    def _respawn(self, wid: int) -> None:
        """Replace a lost worker: fresh inbox (a SIGKILL can strand the
        old queue's read lock mid-``get``) and fresh result pipe
        (``_spawn`` replaces it, discarding any torn trailing frame),
        exponential backoff per slot."""
        self.respawns += 1
        attempt = self._respawn_attempts[wid]
        self._respawn_attempts[wid] = attempt + 1
        delay = min(0.05 * (2 ** attempt), 1.0)
        if delay > 0:
            time.sleep(delay)
        old = self._procs[wid]
        try:
            old.join(timeout=0.5)
        except Exception:
            pass
        self._hb[wid] = 0.0
        self._cur[wid] = -1
        self._inboxes[wid] = self._mp_ctx.SimpleQueue()
        self._procs[wid] = self._spawn(wid)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the workers — join with a timeout, then terminate, then
        SIGKILL stragglers — so a failing sweep never leaks a live child
        process; safe to call repeatedly."""
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:
                pass
        # Closing the read ends first turns any worker blocked mid-report
        # into an EPIPE exit instead of a join-timeout straggler.
        for fd in self._rfds:
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._rfds = [None] * len(self._rfds)
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                # SIGTERM ignored or blocked: SIGKILL cannot be.
                try:
                    p.kill()
                except Exception:
                    pass
                p.join(timeout=2.0)
        self._procs = []
        self._inboxes = []
        self._rfds = []
        self._rbufs = []

    def __enter__(self) -> "StickyPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- result pipes --------------------------------------------------------

    def _drain_worker(self, wid: int) -> List[tuple]:
        """Every complete frame currently in one worker's result pipe.

        Never blocks: the read end is non-blocking and only whole frames
        decode — a torn trailing frame from a killed worker sits unparsed
        in the buffer until the respawn discards it with the pipe.
        """
        if wid >= len(self._rfds):
            return []
        fd = self._rfds[wid]
        if fd is None:
            return []
        buf = self._rbufs[wid]
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
            if not chunk:
                break  # EOF: the worker is gone; supervision handles it
            buf += chunk
        msgs: List[tuple] = []
        off = 0
        while len(buf) - off >= _FRAME_HDR.size:
            (length,) = _FRAME_HDR.unpack_from(buf, off)
            start = off + _FRAME_HDR.size
            if len(buf) - start < length:
                break
            try:
                msgs.append(pickle.loads(bytes(buf[start:start + length])))
            except Exception:
                pass  # undecodable frame: skip it, framing stays aligned
            off = start + length
        if off:
            del buf[:off]
        return msgs

    def _poll_messages(self, timeout: float) -> List[tuple]:
        """Wait up to ``timeout`` for worker reports across all pipes."""
        fds = [fd for fd in self._rfds if fd is not None]
        if not fds:
            time.sleep(timeout)
            return []
        try:
            ready, _, _ = select.select(fds, [], [], timeout)
        except OSError:
            return []  # a pipe was replaced under us: caller re-polls
        msgs: List[tuple] = []
        for fd in ready:
            msgs.extend(self._drain_worker(self._rfds.index(fd)))
        return msgs

    # -- dispatch ------------------------------------------------------------

    def run(
        self,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        costs: Optional[Sequence[float]] = None,
        groups: Optional[Sequence[Any]] = None,
        stealing: bool = True,
        on_result: Optional[Callable[[int, Any], None]] = None,
        profile: bool = False,
    ) -> Tuple[List[Any], SchedStats]:
        """Run ``fn`` over ``points``; returns (ordered results, stats).

        ``on_result(i, value)`` fires as each point's value arrives
        (arbitrary order) — the overlapped-cache-write hook.  Exceptions
        raised by ``fn`` propagate.  A worker death falls back to inline
        recomputation of the missing points.
        """
        points = list(points)
        n = len(points)
        if costs is None:
            costs = [1.0] * n
        stats = SchedStats(points=n, workers=self.workers, pooled=True)
        if n == 0:
            return [], stats
        if self.broken:
            stats.pooled = False
            return _run_inline(
                fn, points, costs, groups, on_result, profile, stats
            )
        plans = build_chunks(costs, groups, self.workers)
        router = _Router(
            plans, self.workers, stealing=stealing, warm_hint=self.warm_keys
        )
        results: List[Any] = [None] * n
        got = [False] * n
        remaining = n
        strikes: Dict[int, int] = {}
        redo: "deque[int]" = deque()
        records: List[Tuple[float, float]] = []
        self._epoch += 1
        epoch = self._epoch
        t_base = time.monotonic()
        #: frames drained but not yet handled (the pipe pump can surface
        #: several completions in one poll)
        pending_msgs: "deque[tuple]" = deque()
        #: wid -> (chunk, dispatch timestamp)
        in_flight: Dict[int, Tuple[Chunk, float]] = {}
        next_cid = sum(len(p.chunks) for p in plans)

        def fill(i: int, v: Any) -> None:
            # Deduplicating sink: a hung-killed worker's late completion
            # can race its points' re-dispatch — first value wins (they
            # are bit-identical anyway; the simulator is deterministic).
            nonlocal remaining
            if got[i]:
                return
            got[i] = True
            remaining -= 1
            results[i] = v
            if on_result is not None:
                on_result(i, v)

        def quarantine(i: int, reason: str) -> None:
            """Last rung of the poison ladder: sandbox once, then mark."""
            ok, payload = self._one_shot(fn, points[i])
            if ok:
                stats.sandbox_rescues += 1
                fill(i, payload)
                return
            stats.poisoned += 1
            stats.poisoned_indices.append(i)
            fill(
                i,
                PoisonedPoint(
                    index=i,
                    strikes=strikes.get(i, 0),
                    reason=f"{reason}; sandbox retry: {payload}",
                ),
            )

        def dispatch(wid: int) -> None:
            ch = router.next_for(wid)
            if ch is None:
                # Router drained: pick up re-dispatched points (one per
                # chunk — they already cost a worker once).
                nonlocal next_cid
                while redo and got[redo[0]]:
                    redo.popleft()
                if not redo:
                    return
                i = redo.popleft()
                ch = Chunk(next_cid, ("_redo", i), (i,), costs[i])
                next_cid += 1
            self._inboxes[wid].put(
                (epoch, ch.cid, fn, [points[i] for i in ch.indices],
                 list(ch.indices))
            )
            in_flight[wid] = (ch, time.monotonic())

        def on_worker_lost(wid: int, why: str) -> None:
            """Blame, requeue, respawn — or escalate to _SchedBroken."""
            # The dying worker may have shipped complete frames before the
            # kill landed; salvage them (``fill`` dedupes) before the
            # respawn discards its pipe.
            for msg in self._drain_worker(wid):
                if msg[0] == "done" and msg[1] == epoch and msg[8]:
                    for i, v in zip(msg[8], pickle.loads(msg[4])):
                        fill(i, v)
            ent = in_flight.pop(wid, None)
            if ent is not None:
                ch, _t = ent
                router.on_done(wid)
                blamed = self._cur[wid]
                for i in ch.indices:
                    if got[i]:
                        continue
                    if i == blamed:
                        strikes[i] = strikes.get(i, 0) + 1
                        if strikes[i] >= self.poison_strikes:
                            quarantine(
                                i, f"{why} x{strikes[i]} (worker {wid})"
                            )
                            continue
                    redo.append(i)
            if self.respawns >= self.max_respawns:
                raise _SchedBroken(
                    f"respawn budget exhausted ({self.respawns}/"
                    f"{self.max_respawns}) after {why}"
                )
            self._respawn(wid)
            stats.respawns += 1
            dispatch(wid)

        def supervise() -> None:
            now = time.monotonic()
            for wid in range(self.workers):
                p = self._procs[wid]
                if not p.is_alive():
                    on_worker_lost(wid, "worker died")
                    continue
                ent = in_flight.get(wid)
                if ent is None or self.hung_s is None:
                    continue
                ch, t_disp = ent
                if now - max(self._hb[wid], t_disp) > self.hung_s:
                    # Alive but silent past the deadline: hung, not slow —
                    # every point stamps a heartbeat on entry.
                    stats.hung_kills += 1
                    try:
                        p.kill()
                    except Exception:
                        pass
                    p.join(timeout=2.0)
                    on_worker_lost(wid, "hung chunk killed")

        try:
            for wid in range(self.workers):
                dispatch(wid)
            while remaining > 0:
                if not in_flight:
                    # Workers idle with work left: top everyone back up
                    # (points can enter `redo` outside dispatch paths).
                    for wid in range(self.workers):
                        if wid not in in_flight:
                            dispatch(wid)
                    if not in_flight:
                        if remaining > 0:
                            raise _SchedBroken("scheduler starved")
                        break
                if not pending_msgs:
                    pending_msgs.extend(self._poll_messages(_POLL_S))
                    if not pending_msgs:
                        supervise()
                        continue
                msg = pending_msgs.popleft()
                tag = msg[0]
                if tag == "done":
                    _, ep, wid, cid, buf, t0w, t1w, warm, idxs = msg
                    if ep != epoch:
                        continue  # stale chunk from an aborted run
                    ent = in_flight.pop(wid, None)
                    if ent is None or ent[0].cid != cid:
                        # Completion raced loss detection (the worker
                        # finished right before supervision declared it
                        # lost): salvage the values — `fill` dedupes
                        # against any re-dispatch already in flight.
                        if idxs:
                            for i, v in zip(idxs, pickle.loads(buf)):
                                fill(i, v)
                        continue
                    ch = ent[0]
                    vals = pickle.loads(buf)
                    for i, v in zip(ch.indices, vals):
                        fill(i, v)
                    self.warm_keys[wid] = warm
                    wall = t1w - t0w
                    records.append((ch.cost, wall))
                    stats.note_chunk(
                        wid, ch, wall, t0w - t_base, t1w - t_base, profile
                    )
                    router.on_done(wid)
                    dispatch(wid)
                elif tag == "err":
                    _, ep, wid, cid, exc = msg
                    if ep != epoch:
                        continue
                    in_flight.pop(wid, None)
                    router.on_done(wid)
                    raise exc
        except _SchedBroken:
            self.broken = True
            self.close()
            # Salvage: recompute only what's missing, inline, in order.
            for i in range(n):
                if not got[i]:
                    v = fn(points[i])
                    results[i] = v
                    if on_result is not None:
                        on_result(i, v)
                    stats.fallback_points += 1
        stats.steals = router.steals
        stats.finalize(records)
        return results, stats

    def _one_shot(self, fn, point) -> Tuple[bool, Any]:
        """Sandboxed single-point retry under a tight deadline.

        Runs ``fn(point)`` in a fresh subprocess (no scheduler worker
        state, no chaos role — worker-scoped chaos cannot follow it
        here) and returns ``(True, value)`` or ``(False, reason)``.
        """
        recv = None
        try:
            recv, send = self._mp_ctx.Pipe(duplex=False)
            p = self._mp_ctx.Process(
                target=_sandbox_main,
                args=(send, fn, point),
                daemon=True,
                name="repro-sched-sandbox",
            )
            p.start()
            send.close()
            p.join(timeout=self.sandbox_deadline_s)
            if p.is_alive():
                try:
                    p.kill()
                except Exception:
                    pass
                p.join(timeout=2.0)
                return False, f"deadline {self.sandbox_deadline_s:g}s exceeded"
            try:
                if recv.poll(0):
                    tag, payload = recv.recv()
                    if tag == "ok":
                        return True, pickle.loads(payload)
                    return False, str(payload)
            except EOFError:
                pass  # died with the pipe open but nothing written
            return False, f"sandbox exited {p.exitcode} without a result"
        except Exception as exc:
            return False, f"sandbox unavailable: {exc!r}"
        finally:
            if recv is not None:
                try:
                    recv.close()
                except Exception:
                    pass


# --------------------------------------------------------------------------
# Inline execution (single CPU, pool unavailable, or salvage)
# --------------------------------------------------------------------------


def _run_inline(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    costs: Sequence[float],
    groups: Optional[Sequence[Any]],
    on_result: Optional[Callable[[int, Any], None]],
    profile: bool,
    stats: SchedStats,
) -> Tuple[List[Any], SchedStats]:
    """The same chunk plan executed in-process, big groups first."""
    n = len(points)
    plans = build_chunks(costs, groups, workers=1)
    results: List[Any] = [None] * n
    records: List[Tuple[float, float]] = []
    t_base = time.monotonic()
    for plan in plans:
        for ch in plan.chunks:
            t0 = time.monotonic()
            for i in ch.indices:
                v = fn(points[i])
                results[i] = v
                if on_result is not None:
                    on_result(i, v)
            t1 = time.monotonic()
            wall = t1 - t0
            records.append((ch.cost, wall))
            stats.note_chunk(0, ch, wall, t0 - t_base, t1 - t_base, profile)
    stats.finalize(records)
    return results, stats


def run_scheduled(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    workers: int = 1,
    costs: Optional[Sequence[float]] = None,
    groups: Optional[Sequence[Any]] = None,
    stealing: bool = True,
    on_result: Optional[Callable[[int, Any], None]] = None,
    profile: bool = False,
    pool: Optional[StickyPool] = None,
) -> Tuple[List[Any], SchedStats]:
    """One-shot scheduled run: pooled when it can win, else inline.

    ``pool`` lends a long-lived :class:`StickyPool` (the
    :class:`~repro.exec.context.ExecContext` owns one per session);
    without it a throwaway pool is created only when ``workers > 1``
    *and* the host actually has more than one usable CPU — on a one-CPU
    host process fan-out is pure IPC loss, so the cost model's cheapest
    plan is the inline one.
    """
    points = list(points)
    if costs is None:
        costs = [1.0] * len(points)
    if pool is not None and not pool.broken:
        return pool.run(
            fn, points, costs=costs, groups=groups, stealing=stealing,
            on_result=on_result, profile=profile,
        )
    workers = min(workers, len(points))
    if workers > 1 and usable_cpus() > 1:
        try:
            own = StickyPool(workers)
        except Exception:
            own = None
        if own is not None:
            try:
                return own.run(
                    fn, points, costs=costs, groups=groups,
                    stealing=stealing, on_result=on_result, profile=profile,
                )
            finally:
                own.close()
    stats = SchedStats(points=len(points), workers=1, pooled=False)
    return _run_inline(fn, points, costs, groups, on_result, profile, stats)
