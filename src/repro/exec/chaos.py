"""Seeded, deterministic chaos injection for the *harness* itself.

:mod:`repro.faults` proves the simulated kernel's degraded-mode ladder;
this module is its twin one layer up: it attacks the execution harness —
the worker pool, the result cache, the journal's atomic publications —
so the resilience layer (supervision, respawn, poison accounting, CRC
quarantine, write-ahead journal) can prove that every sweep still
completes with results bit-identical to a clean serial run.

Same design contract as the fault plans:

* **Off by default, zero-cost when off.**  Nothing draws unless
  ``REPRO_CHAOS`` is set (or a plan is armed explicitly); default runs
  never touch this module's state.
* **Deterministic.**  Draws come from per-``(spec, op, role)``
  string-seeded :class:`random.Random` streams keyed by a per-``(op,
  role)`` call index — the same plan replays the same injection pattern
  for the same process role (worker slot ``w0..wN`` / ``main``).  The
  *schedule* of which worker runs which chunk is still timing-dependent;
  what the soak battery verifies is schedule-independent: completion,
  bit-identity, and zero leaks.
* **Injection sites are role-scoped.**  ``kill`` and ``stall`` fire only
  inside scheduler worker processes (:mod:`repro.exec.sched` draws them
  around each point) — never in the parent, never in the poison-retry
  sandbox, never in inline salvage, so chaos can always be out-survived.
  Cache attacks fire wherever :meth:`~repro.exec.cache.ResultCache.put`
  runs.

The ``op`` namespace and kinds:

=========  ===============================================================
``point``  per point executed in a scheduler worker:
           ``kill`` — SIGKILL the worker mid-chunk;
           ``stall`` — hang the point for ``factor`` seconds (default 30;
           trips hung-chunk supervision long before it returns)
``cache``  per :meth:`ResultCache.put`:
           ``corrupt`` — flip a byte of the just-published entry;
           ``truncate`` — cut the entry in half (torn write at rest);
           ``tear`` — abandon the swap mid-rename: the temp file is
           written and fsync'd but never renamed over the target, exactly
           the state a kill between write and ``os.replace`` leaves
=========  ===============================================================

Plan grammar (``REPRO_CHAOS`` / ``parse_chaos``)::

    "<seed>:<kind>[@prob[@factor]][,<kind>...]"
    parse_chaos("7:kill@0.05,stall@0.02@30,corrupt@0.2")

``calls``-scheduled specs (exact per-``(op, role)`` call indices) are
available programmatically for unit tests that need one injection at one
exact point.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "ENV_CHAOS",
    "CHAOS_KINDS",
    "CHAOS_OPS",
    "ChaosSpec",
    "ChaosPlan",
    "ChaosState",
    "parse_chaos",
    "plan_from_env",
    "state",
    "set_role",
    "reset_state",
]

#: environment knob consumed by the chaos soak battery and the
#: ``python -m repro.bench chaos`` CLI (never by default runs).
ENV_CHAOS = "REPRO_CHAOS"

CHAOS_KINDS = ("kill", "stall", "corrupt", "truncate", "tear")
CHAOS_OPS = ("any", "point", "cache")

#: which ops each kind is allowed to fire at (role scoping is enforced by
#: the draw sites, op scoping here)
KIND_OPS = {
    "kill": "point",
    "stall": "point",
    "corrupt": "cache",
    "truncate": "cache",
    "tear": "cache",
}

_DEFAULT_FACTOR = {"stall": 30.0}
_DEFAULT_PROB = {
    "kill": 0.05,
    "stall": 0.02,
    "corrupt": 0.2,
    "truncate": 0.2,
    "tear": 0.2,
}


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos rule: what to break and when.

    ``calls`` schedules exact injections by per-``(op, role)`` call index
    (0-based); otherwise the spec is probabilistic with per-call
    probability ``prob``.  ``factor`` is the stall duration in seconds.
    """

    kind: str
    calls: Optional[Tuple[int, ...]] = None
    prob: float = 0.0
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r} (not in {CHAOS_KINDS})"
            )
        if self.calls is not None:
            object.__setattr__(self, "calls", tuple(int(c) for c in self.calls))
            if any(c < 0 for c in self.calls):
                raise ValueError("call indices must be >= 0")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.factor is not None and self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    @property
    def op(self) -> str:
        return KIND_OPS[self.kind]

    @property
    def resolved_factor(self) -> float:
        if self.factor is not None:
            return self.factor
        return _DEFAULT_FACTOR.get(self.kind, 1.0)


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable set of chaos rules plus the seed that arms them."""

    seed: int = 0
    specs: Tuple[ChaosSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for s in self.specs:
            if not isinstance(s, ChaosSpec):
                raise ValueError(f"specs must be ChaosSpec instances, got {s!r}")

    def arm(self, role: str = "main") -> "ChaosState":
        return ChaosState(self, role=role)


class ChaosState:
    """Per-process mutable draw state of an armed :class:`ChaosPlan`.

    ``role`` names the process slot (``main``, ``w0``..``wN``, set by the
    scheduler worker on startup) and keys the RNG streams, so worker slot
    k draws the same pattern every run under the same plan.
    """

    __slots__ = ("plan", "role", "_calls", "_rngs", "injected")

    def __init__(self, plan: ChaosPlan, role: str = "main"):
        self.plan = plan
        self.role = role
        #: per-op call counter within this process
        self._calls: Dict[str, int] = {}
        self._rngs: Dict[Tuple[int, str], random.Random] = {}
        #: injections actually fired, by kind
        self.injected: Dict[str, int] = {}

    def _rng(self, i: int, op: str) -> random.Random:
        key = (i, op)
        rng = self._rngs.get(key)
        if rng is None:
            # String seeding — deterministic across processes and
            # PYTHONHASHSEED values, like the fault plans.
            rng = random.Random(f"{self.plan.seed}/{i}/{op}/{self.role}")
            self._rngs[key] = rng
        return rng

    def draw(self, op: str) -> Optional[ChaosSpec]:
        """One injection decision for one call at site ``op``.

        Advances the op's call index exactly once per call; specs are
        evaluated in plan order and the first firing one wins.
        """
        idx = self._calls.get(op, 0)
        self._calls[op] = idx + 1
        for i, spec in enumerate(self.plan.specs):
            if spec.op != op:
                continue
            if spec.calls is not None:
                fired = idx in spec.calls
            else:
                fired = spec.prob > 0.0 and self._rng(i, op).random() < spec.prob
            if fired:
                self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
                return spec
        return None

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def counts(self) -> dict:
        return dict(self.injected)


# -- textual plans (REPRO_CHAOS / --chaos) -----------------------------------


def parse_chaos(text: str) -> ChaosPlan:
    """Parse ``"<seed>:<kind>[@prob[@factor]],..."`` into a plan."""
    text = text.strip()
    head, sep, body = text.partition(":")
    if not sep or not body.strip():
        raise ValueError(
            f"invalid chaos plan {text!r}: expected '<seed>:<kind>[@prob],...'"
        )
    try:
        seed = int(head.strip())
    except ValueError:
        raise ValueError(f"invalid chaos-plan seed {head!r}") from None
    specs = []
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split("@")
        kind = parts[0].strip()
        if kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {kind!r} (not in {CHAOS_KINDS})")
        if len(parts) > 3:
            raise ValueError(f"too many '@' values in {item!r}")
        prob = _DEFAULT_PROB[kind]
        factor = None
        try:
            if len(parts) >= 2 and parts[1].strip():
                prob = float(parts[1].strip())
            if len(parts) == 3 and parts[2].strip():
                factor = float(parts[2].strip())
        except ValueError:
            raise ValueError(f"invalid chaos value in {item!r}") from None
        specs.append(ChaosSpec(kind, prob=prob, factor=factor))
    if not specs:
        raise ValueError(f"chaos plan {text!r} names no injections")
    return ChaosPlan(seed=seed, specs=tuple(specs))


def plan_from_env() -> Optional[ChaosPlan]:
    """The :data:`ENV_CHAOS` plan, or None when unset/empty."""
    raw = os.environ.get(ENV_CHAOS, "").strip()
    if not raw:
        return None
    return parse_chaos(raw)


# -- per-process armed state -------------------------------------------------

#: (pid, role, raw-env) -> armed state.  Keyed on pid so a fork child
#: (scheduler worker, poison sandbox) never inherits the parent's call
#: counters; keyed on the raw env string so tests flipping REPRO_CHAOS
#: re-arm immediately.
_ARMED: Optional[Tuple[int, str, str, Optional[ChaosState]]] = None
_ROLE = "main"


def set_role(role: str) -> None:
    """Name this process's chaos role (scheduler workers call this with
    ``w<wid>`` on startup); drops any state armed under the old role."""
    global _ROLE, _ARMED
    _ROLE = role
    _ARMED = None


def reset_state() -> None:
    """Forget the armed state (tests; also re-reads the env next draw)."""
    global _ARMED
    _ARMED = None


def state() -> Optional[ChaosState]:
    """This process's armed chaos state, or None when chaos is off.

    Lazily parsed from :data:`ENV_CHAOS`; re-armed after a fork (pid
    change) so every process draws from its own fresh counters.
    """
    global _ARMED
    raw = os.environ.get(ENV_CHAOS, "").strip()
    pid = os.getpid()
    if _ARMED is not None:
        apid, arole, araw, astate = _ARMED
        if apid == pid and arole == _ROLE and araw == raw:
            return astate
    st = parse_chaos(raw).arm(role=_ROLE) if raw else None
    _ARMED = (pid, _ROLE, raw, st)
    return st
