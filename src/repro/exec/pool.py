"""Chunked process-pool fan-out with deterministic ordering.

``map_points`` is the only primitive: apply a picklable top-level callable
to every point and return results in input order (``ProcessPoolExecutor.map``
preserves ordering regardless of completion order, so a parallel sweep
assembles exactly the list a serial one would).  The caller may pass a
long-lived executor (the :class:`~repro.exec.context.ExecContext` owns one
per sweep session, so consecutive sweeps don't pay pool start-up); without
one a throwaway pool is created.  Any environment where a pool cannot be
created or breaks mid-flight falls back to computing the points serially
in-process — same results, just slower.

With ``timeout`` set, each point gets its own wall-clock budget: a point
that exceeds it is cancelled and re-submitted up to ``retries`` times, then
the sweep raises :class:`PointTimeoutError`.  The deadline path submits
points individually instead of using the chunked ``executor.map``, so it
costs a little more dispatch overhead — it only engages when a timeout is
actually configured.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["map_points", "make_executor", "PointTimeoutError"]


class PointTimeoutError(RuntimeError):
    """A sweep point exceeded its per-point wall-clock budget.

    Subclasses RuntimeError (not TimeoutError) deliberately: on Python
    3.11+ ``TimeoutError`` is an ``OSError``, which the pool's
    broken-pool fallback clause would swallow into a serial recompute of
    the very point that just hung.
    """

    def __init__(self, index: int, attempts: int, timeout: float):
        self.index = index
        self.attempts = attempts
        self.timeout = timeout
        super().__init__(
            f"sweep point {index} exceeded {timeout:g}s "
            f"({attempts} attempt{'s' if attempts != 1 else ''})"
        )


def _serial(fn: Callable[[T], R], points: List[T]) -> List[R]:
    return [fn(p) for p in points]


def make_executor(workers: int):
    """Create a process pool, or ``None`` where that's impossible."""
    if workers <= 1:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, OSError, PermissionError, NotImplementedError):
        return None


def map_points(
    fn: Callable[[T], R],
    points: Iterable[T],
    workers: int,
    executor: Optional[object] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> List[R]:
    points = list(points)
    if workers <= 1 or len(points) <= 1:
        return _serial(fn, points)
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:
        return _serial(fn, points)
    own = executor is None
    if own:
        executor = make_executor(min(workers, len(points)))
        if executor is None:
            return _serial(fn, points)
    if timeout is not None:
        return _map_with_deadline(
            fn, points, executor, own, timeout, retries, BrokenProcessPool
        )
    chunksize = max(1, len(points) // (workers * 4))
    try:
        try:
            return list(executor.map(fn, points, chunksize=chunksize))
        except (BrokenProcessPool, OSError, PermissionError, NotImplementedError):
            # Sandboxed/fork-restricted hosts (or a worker dying mid-map):
            # the sweep still completes serially.  A throwaway pool is torn
            # down *before* the serial recomputation so its workers don't
            # outlive the failure; ``finally`` below then has nothing to do.
            if own:
                executor.shutdown(wait=True, cancel_futures=True)
                executor = None
            return _serial(fn, points)
    finally:
        # Covers success AND exceptions raised by fn itself (which
        # executor.map re-raises in the caller): a pool we created never
        # leaks its worker processes.
        if own and executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


def _map_with_deadline(
    fn: Callable[[T], R],
    points: List[T],
    executor,
    own: bool,
    timeout: float,
    retries: int,
    broken_pool_exc: type,
) -> List[R]:
    """Point-at-a-time submission with a per-point wall-clock budget.

    A timed-out future cannot be truly cancelled once running, so the
    stuck worker is abandoned with the pool: we shut the executor down
    without waiting and re-run the remaining points serially after a
    retry budget is exhausted — except that raising is the contract here
    (a point that hangs twice is a bug, not load).  ``TimeoutError`` from
    ``Future.result`` is caught *before* the broken-pool clause because
    on Python 3.11+ it is an ``OSError`` subclass.
    """
    from concurrent.futures import TimeoutError as FuturesTimeout

    results: List[R] = []
    i = 0
    try:
        while i < len(points):
            pt = points[i]
            attempt = 0
            while True:
                try:
                    fut = executor.submit(fn, pt)
                except (broken_pool_exc, OSError, PermissionError, RuntimeError):
                    # Pool unusable (broken or shut down): finish serially.
                    results.extend(_serial(fn, points[i:]))
                    return results
                try:
                    results.append(fut.result(timeout=timeout))
                    break
                except FuturesTimeout:
                    attempt += 1
                    fut.cancel()
                    if attempt > retries:
                        raise PointTimeoutError(i, attempt, timeout) from None
                    # re-submit; the hung worker (if truly running) keeps a
                    # pool slot busy, which is why retries should be small.
                except (broken_pool_exc, OSError, PermissionError):
                    results.extend(_serial(fn, points[i:]))
                    return results
            i += 1
        return results
    except PointTimeoutError:
        if own:
            # Don't wait: the whole point is that a worker is stuck.
            executor.shutdown(wait=False, cancel_futures=True)
            executor = None  # noqa: F841 — signal the finally below
        raise
    finally:
        if own and executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
