"""Chunked process-pool fan-out with deterministic ordering.

``map_points`` is the only primitive: apply a picklable top-level callable
to every point and return results in input order (``ProcessPoolExecutor.map``
preserves ordering regardless of completion order, so a parallel sweep
assembles exactly the list a serial one would).  The caller may pass a
long-lived executor (the :class:`~repro.exec.context.ExecContext` owns one
per sweep session, so consecutive sweeps don't pay pool start-up); without
one a throwaway pool is created.  Any environment where a pool cannot be
created or breaks mid-flight falls back to computing the points serially
in-process — same results, just slower.

With ``timeout`` set, each point gets its own wall-clock budget: a point
that exceeds it is cancelled and re-submitted up to ``retries`` times, then
the sweep raises :class:`PointTimeoutError`.  The deadline path keeps a
full window of individually-submitted points in flight (one per pool
slot) rather than using the chunked ``executor.map`` — points run
concurrently, and a timed-out point's retry is re-submitted to the pool's
idle workers while the rest of the window keeps computing.  It only
engages when a timeout is actually configured.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["map_points", "make_executor", "PointTimeoutError"]


class PointTimeoutError(RuntimeError):
    """A sweep point exceeded its per-point wall-clock budget.

    Subclasses RuntimeError (not TimeoutError) deliberately: on Python
    3.11+ ``TimeoutError`` is an ``OSError``, which the pool's
    broken-pool fallback clause would swallow into a serial recompute of
    the very point that just hung.
    """

    def __init__(self, index: int, attempts: int, timeout: float):
        self.index = index
        self.attempts = attempts
        self.timeout = timeout
        super().__init__(
            f"sweep point {index} exceeded {timeout:g}s "
            f"({attempts} attempt{'s' if attempts != 1 else ''})"
        )


def _serial(fn: Callable[[T], R], points: List[T]) -> List[R]:
    return [fn(p) for p in points]


def make_executor(workers: int):
    """Create a process pool, or ``None`` where that's impossible."""
    if workers <= 1:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, OSError, PermissionError, NotImplementedError):
        return None


def map_points(
    fn: Callable[[T], R],
    points: Iterable[T],
    workers: int,
    executor: Optional[object] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    on_pool_broken: Optional[Callable[[], None]] = None,
) -> List[R]:
    """``on_pool_broken`` fires (at most once per call) when the executor
    breaks or refuses work and the sweep falls back to serial — the hook
    the context's circuit breaker counts pool-level failures through."""
    points = list(points)
    if workers <= 1 or len(points) <= 1:
        return _serial(fn, points)
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:
        return _serial(fn, points)
    own = executor is None
    if own:
        executor = make_executor(min(workers, len(points)))
        if executor is None:
            return _serial(fn, points)
    if timeout is not None:
        return _map_with_deadline(
            fn, points, executor, own, timeout, retries, BrokenProcessPool,
            on_pool_broken,
        )
    chunksize = max(1, len(points) // (workers * 4))
    try:
        try:
            return list(executor.map(fn, points, chunksize=chunksize))
        except (BrokenProcessPool, OSError, PermissionError, NotImplementedError):
            # Sandboxed/fork-restricted hosts (or a worker dying mid-map):
            # the sweep still completes serially.  A throwaway pool is torn
            # down *before* the serial recomputation so its workers don't
            # outlive the failure; ``finally`` below then has nothing to do.
            if on_pool_broken is not None:
                on_pool_broken()
            if own:
                executor.shutdown(wait=True, cancel_futures=True)
                executor = None
            return _serial(fn, points)
    finally:
        # Covers success AND exceptions raised by fn itself (which
        # executor.map re-raises in the caller): a pool we created never
        # leaks its worker processes.
        if own and executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


def _map_with_deadline(
    fn: Callable[[T], R],
    points: List[T],
    executor,
    own: bool,
    timeout: float,
    retries: int,
    broken_pool_exc: type,
    on_pool_broken: Optional[Callable[[], None]] = None,
) -> List[R]:
    """Windowed concurrent submission with a per-point wall-clock budget.

    One future per pool slot stays in flight; each carries its own
    deadline from submit time.  A point past its deadline is cancelled
    and — while it still has retry budget — immediately re-submitted, so
    the retry runs on an *idle* worker concurrently with the rest of the
    window (the hung attempt, if truly running, occupies only its own
    slot).  A point that exhausts ``retries`` raises
    :class:`PointTimeoutError` — a point that hangs repeatedly is a bug,
    not load.  A timed-out future cannot be truly cancelled once running,
    so on raise an *owned* executor is shut down without waiting; a
    caller-owned executor is left to its owner.

    Exceptions raised by ``fn`` itself propagate from ``Future.result``;
    a broken/unusable pool finishes the remaining points serially, same
    results.
    """
    from concurrent.futures import FIRST_COMPLETED, wait

    n = len(points)
    results: List[Optional[R]] = [None] * n
    done = [False] * n
    attempts = [0] * n
    stalled = False  # some attempt overran its deadline (worker may be stuck)
    width = getattr(executor, "_max_workers", None) or 1
    width = max(int(width), 1)
    pending: dict = {}  # future -> (index, deadline)
    next_i = 0

    def submit(i: int) -> bool:
        """Submit point ``i``; False means the pool is unusable."""
        attempts[i] += 1
        try:
            fut = executor.submit(fn, points[i])
        except (broken_pool_exc, OSError, PermissionError, RuntimeError):
            return False
        pending[fut] = (i, time.monotonic() + timeout)
        return True

    def finish_serially() -> List[R]:
        if on_pool_broken is not None:
            on_pool_broken()
        for fut in pending:
            fut.cancel()
        pending.clear()
        for i in range(n):
            if not done[i]:
                results[i] = fn(points[i])
                done[i] = True
        return results  # type: ignore[return-value]

    try:
        while next_i < n and len(pending) < width:
            if not submit(next_i):
                return finish_serially()
            next_i += 1
        while pending:
            horizon = min(dl for _, dl in pending.values())
            wait_s = max(horizon - time.monotonic(), 0.0)
            completed, _ = wait(
                list(pending), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            for fut in completed:
                i, _dl = pending.pop(fut)
                try:
                    results[i] = fut.result()
                except (broken_pool_exc, OSError, PermissionError):
                    return finish_serially()
                done[i] = True
                if next_i < n:
                    if not submit(next_i):
                        return finish_serially()
                    next_i += 1
            now = time.monotonic()
            overdue = [
                (fut, i) for fut, (i, dl) in pending.items() if dl <= now
            ]
            for fut, i in overdue:
                stalled = True
                fut.cancel()
                del pending[fut]
                if attempts[i] > retries:
                    raise PointTimeoutError(i, attempts[i], timeout) from None
                # Re-submit: the pool's idle workers pick it up while the
                # hung attempt (if truly running) blocks only its slot.
                if not submit(i):
                    return finish_serially()
        return results  # type: ignore[return-value]
    except PointTimeoutError:
        if own:
            # Don't wait: the whole point is that a worker is stuck.
            executor.shutdown(wait=False, cancel_futures=True)
            executor = None  # noqa: F841 — signal the finally below
        raise
    finally:
        if own and executor is not None:
            # A cancelled-but-running attempt cannot be interrupted; once
            # anything overran its deadline, don't let an abandoned sleep
            # hold the (already complete) sweep hostage on shutdown.
            executor.shutdown(wait=not stalled, cancel_futures=True)
