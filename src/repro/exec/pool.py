"""Chunked process-pool fan-out with deterministic ordering.

``map_points`` is the only primitive: apply a picklable top-level callable
to every point and return results in input order (``ProcessPoolExecutor.map``
preserves ordering regardless of completion order, so a parallel sweep
assembles exactly the list a serial one would).  The caller may pass a
long-lived executor (the :class:`~repro.exec.context.ExecContext` owns one
per sweep session, so consecutive sweeps don't pay pool start-up); without
one a throwaway pool is created.  Any environment where a pool cannot be
created or breaks mid-flight falls back to computing the points serially
in-process — same results, just slower.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["map_points", "make_executor"]


def _serial(fn: Callable[[T], R], points: List[T]) -> List[R]:
    return [fn(p) for p in points]


def make_executor(workers: int):
    """Create a process pool, or ``None`` where that's impossible."""
    if workers <= 1:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, OSError, PermissionError, NotImplementedError):
        return None


def map_points(
    fn: Callable[[T], R],
    points: Iterable[T],
    workers: int,
    executor: Optional[object] = None,
) -> List[R]:
    points = list(points)
    if workers <= 1 or len(points) <= 1:
        return _serial(fn, points)
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:
        return _serial(fn, points)
    own = executor is None
    if own:
        executor = make_executor(min(workers, len(points)))
        if executor is None:
            return _serial(fn, points)
    chunksize = max(1, len(points) // (workers * 4))
    try:
        try:
            return list(executor.map(fn, points, chunksize=chunksize))
        except (BrokenProcessPool, OSError, PermissionError, NotImplementedError):
            # Sandboxed/fork-restricted hosts (or a worker dying mid-map):
            # the sweep still completes serially.  A throwaway pool is torn
            # down *before* the serial recomputation so its workers don't
            # outlive the failure; ``finally`` below then has nothing to do.
            if own:
                executor.shutdown(wait=True, cancel_futures=True)
                executor = None
            return _serial(fn, points)
    finally:
        # Covers success AND exceptions raised by fn itself (which
        # executor.map re-raises in the caller): a pool we created never
        # leaks its worker processes.
        if own and executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
