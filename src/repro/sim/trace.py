"""Phase tracing — the simulator's stand-in for ftrace.

The paper (Fig. 4) breaks a CMA read into *syscall / permission check /
acquire locks / pin pages / copy data* spans using the ftrace kernel tracer.
Our simulated kernel records the same spans here so the breakdown figure can
be regenerated, and so tests can assert where time actually went.

Tracing is off by default (a disabled tracer costs one attribute check per
span) and is enabled per-experiment.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

__all__ = ["Span", "Tracer", "PHASES"]

#: Canonical CMA phases, in the order the kernel executes them.
PHASES = ("syscall", "check", "lock", "pin", "copy")


class Span:
    """One timed phase of one process."""

    __slots__ = ("proc", "phase", "t0", "t1", "meta")

    def __init__(self, proc: str, phase: str, t0: float, t1: float, meta=None):
        self.proc = proc
        self.phase = phase
        self.t0 = t0
        self.t1 = t1
        self.meta = meta

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.proc}, {self.phase}, {self.t0:.3f}->{self.t1:.3f})"


class Tracer:
    """Accumulates spans; cheap to query per phase or per process."""

    __slots__ = ("enabled", "spans")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: list[Span] = []

    def record(
        self, proc: str, phase: str, t0: float, t1: float, meta=None
    ) -> None:
        if self.enabled:
            self.spans.append(Span(proc, phase, t0, t1, meta))

    def clear(self) -> None:
        self.spans.clear()

    # -- aggregation ---------------------------------------------------------

    def total_by_phase(
        self, procs: Optional[Iterable[str]] = None
    ) -> dict[str, float]:
        """Sum span durations per phase, optionally restricted to processes."""
        allowed = set(procs) if procs is not None else None
        out: dict[str, float] = defaultdict(float)
        for s in self.spans:
            if allowed is None or s.proc in allowed:
                out[s.phase] += s.duration
        return dict(out)

    def mean_by_phase(self) -> dict[str, float]:
        """Mean span duration per phase across all recorded spans."""
        sums: dict[str, float] = defaultdict(float)
        counts: dict[str, int] = defaultdict(int)
        for s in self.spans:
            sums[s.phase] += s.duration
            counts[s.phase] += 1
        return {k: sums[k] / counts[k] for k in sums}

    def breakdown(self, proc: str) -> dict[str, float]:
        """Per-phase totals for a single process — one bar of Figure 4."""
        out: dict[str, float] = defaultdict(float)
        for s in self.spans:
            if s.proc == proc:
                out[s.phase] += s.duration
        return dict(out)

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> list[dict]:
        """Spans as Chrome Trace Event Format (load in chrome://tracing or
        https://ui.perfetto.dev to see the collective's timeline).

        Each simulated process becomes a "thread"; phases become complete
        ('X') events.  Times are already microseconds, the format's unit.
        """
        tids: dict[str, int] = {}
        events = []
        for s in self.spans:
            tid = tids.setdefault(s.proc, len(tids) + 1)
            events.append(
                {
                    "name": s.phase,
                    "cat": "cma",
                    "ph": "X",
                    "ts": s.t0,
                    "dur": s.duration,
                    "pid": 1,
                    "tid": tid,
                    "args": {} if s.meta is None else {"meta": str(s.meta)},
                }
            )
        # thread name metadata so the viewer shows rank names
        for proc, tid in tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": proc},
                }
            )
        return events

    def save_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the number of span events."""
        import json

        events = self.to_chrome_trace()
        with open(path, "w") as fh:
            json.dump(events, fh)
        return sum(1 for e in events if e.get("ph") == "X")
