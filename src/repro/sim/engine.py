"""Event loop and process model for the discrete-event simulator.

The design follows the classic process-interaction style (SimPy-like) but is
purpose-built and dependency-free:

* Time is a ``float`` in **microseconds** — the unit used throughout the
  paper's tables and our model parameters.
* A :class:`SimProcess` wraps a generator.  Each ``yield`` hands a *command*
  to the engine; the engine schedules the resumption.  ``return value`` from
  the generator becomes the process result (retrievable via ``Join``).
* Every resumption is still an *event* — there is no re-entrancy and no
  unbounded recursion when locks are released — but zero-delay resumptions
  (spawns, lock grants, release continuations, join wakeups, message
  notifications) ride a FIFO **ready deque** instead of the time heap, and
  events are closure-free ``(time, seq, kind, a, b)`` dispatch records
  rather than lambda allocations.

Ordering is *identical* to a pure-heap engine: a global monotonic sequence
number is allocated at the moment an event is scheduled (exactly where the
old heap push happened), and the run loop merges the deque and the heap by
``(time, seq)``.  Since every ready entry carries the current timestamp and
sequence numbers are allocated in order, the deque is always seq-sorted and
the merge reproduces heap order bit-for-bit — the engine's event
interleaving (and therefore every simulated microsecond downstream, via
FIFO lock queues) is unchanged.  ``Simulator(use_ready_queue=False)`` routes
zero-delay records through the heap instead, which
``tests/test_engine_ordering.py`` uses to assert the equivalence on random
workloads.

The engine knows nothing about machines, kernels, or MPI — those layers are
implemented as generators that run *on* it.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Delay",
    "DelayChain",
    "HoldRelease",
    "Acquire",
    "Release",
    "Join",
    "PinConvoy",
    "FaultConvoy",
    "SimProcess",
    "Simulator",
]


class SimError(RuntimeError):
    """Base class for simulation protocol errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""


# --------------------------------------------------------------------------
# Commands.  Plain slotted classes: created in hot loops.
# --------------------------------------------------------------------------


class Command:
    """Marker base class for values a process may yield to the engine."""

    __slots__ = ()


class Delay(Command):
    """Suspend the yielding process for ``dt`` microseconds of virtual time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimError(f"negative delay {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt})"


class DelayChain(Command):
    """Two back-to-back delays in one engine round-trip.

    With ``d2 > 0`` this produces the *same* event stream as
    ``yield Delay(d1); yield Delay(d2)`` — same timestamps, same tie-breaker
    sequence numbers, same event count — minus one generator resumption:
    the intermediate event is a chain record, not a ``send``.  With
    ``d2 == 0`` the second hop is skipped entirely (the continuation runs
    inside the first event), making it equivalent to ``Delay(d1)`` alone.
    The kernel fast path uses this for the syscall-entry + access-check
    pair, which brackets no observable state.
    """

    __slots__ = ("d1", "d2")

    def __init__(self, d1: float, d2: float):
        if d1 < 0 or d2 < 0:
            raise SimError(f"negative delay in chain ({d1!r}, {d2!r})")
        self.d1 = d1
        self.d2 = d2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DelayChain({self.d1}, {self.d2})"


class HoldRelease(Command):
    """Hold ``lock`` for ``dt`` more microseconds, release it, then resume
    after a further ``extra_dt``.

    Event-stream-identical to ``yield Delay(dt); yield Release(lock)``
    (followed by ``yield Delay(extra_dt)`` when ``extra_dt > 0``), but the
    delay-then-release hop is a dispatch record instead of a generator
    resumption: the release (and the FIFO grant to the next waiter) happens
    at exactly the same timestamp and sequence position as before.  The
    kernel uses this for the pin critical section so an uncontended batch
    costs two generator resumptions instead of four.
    """

    __slots__ = ("lock", "dt", "extra_dt")

    def __init__(self, lock, dt: float, extra_dt: float = 0.0):
        if dt < 0 or extra_dt < 0:
            raise SimError(f"negative delay in hold ({dt!r}, {extra_dt!r})")
        self.lock = lock
        self.dt = dt
        self.extra_dt = extra_dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HoldRelease({self.lock!r}, {self.dt}, {self.extra_dt})"


class Acquire(Command):
    """Block until the given :class:`~repro.sim.resources.Mutex` is granted."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Acquire({self.lock!r})"


class Release(Command):
    """Release a held mutex (the engine resumes the next waiter, FIFO)."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Release({self.lock!r})"


class PinConvoy(Command):
    """Run a whole ``Acquire -> HoldRelease`` pin loop as engine records.

    Yielded once per pin loop (by :meth:`repro.kernel.pagelock.MMLock.
    lock_and_pin` and the untraced CMA data path) instead of one
    ``Acquire`` + ``HoldRelease`` pair per batch.  ``batches`` is the
    precomputed plan — a sequence of ``(pages, extra_dt)`` with the batch
    size and the post-release continuation delay (the batch's pro-rata
    copy share; ``extra_dt`` must be non-negative) — and ``hold_fn(pages,
    proc)`` computes the critical-section length *at grant time*, against
    live mutex state, exactly where the unfused generator computed it.

    The event stream is bit-identical to the unfused loop — same
    timestamps, FIFO grant order, tie-breaker sequence numbers, and event
    counts — but every per-batch hop is a dispatch record instead of a
    generator resumption, and while the lock's contender set consists
    only of convoy members the engine fast-forwards whole epochs in a
    local loop (see :meth:`Simulator._convoy_burst`).  The command
    evaluates to ``npages``.  ``mm`` (optional) is a counter object whose
    ``pages_pinned`` attribute is bumped by ``pages`` at each batch's
    rejoin point, mirroring the unfused bookkeeping position.

    ``memo`` (optional) is a hold-time memo dict owned by the caller.
    Passing it asserts that ``hold_fn(pages, proc)`` is a *pure* function
    of ``(pages, lock.contention_profile(proc.socket))`` — true for the
    mm-lock bounce model, whose only inputs are the batch size and the
    per-socket contender split.  The engine then caches hold values
    under that key: in a steady convoy the contender profile repeats
    every round, so the Python-level ``hold_fn`` call collapses to a
    dict hit returning the exact float it would have computed.

    ``pure`` (derived) is True when every ``extra_dt`` is ``0.0`` — a
    *pure pin loop* (no interleaved copies).  For pure convoys nothing
    is ever in flight except the current holder's release, so the epoch
    fast-forward can run rounds as straight-line code with no heap at
    all (the closed form of the steady state).
    """

    __slots__ = ("lock", "hold_fn", "batches", "mm", "npages", "memo", "pure")

    def __init__(self, lock, hold_fn, batches, mm=None, npages: int = 0,
                 memo=None):
        if not batches:
            raise SimError("PinConvoy needs at least one batch")
        self.lock = lock
        self.hold_fn = hold_fn
        self.batches = batches
        self.mm = mm
        self.npages = npages
        self.memo = memo
        pure = True
        for _, extra in batches:
            if extra != 0.0:
                pure = False
                break
        self.pure = pure

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PinConvoy({self.lock!r}, {len(self.batches)} batches)"


class FaultConvoy(PinConvoy):
    """A pin convoy fused with a trailing pin-free delay (``tail_dt``).

    The mapped-window kernel's cold-copy fast path: per-page fault-ins
    contend on the owner's mm lock exactly like a :class:`PinConvoy`
    (``batches`` is one single-page batch per faulted page), and the
    steady-state copy that follows never touches the lock — it is a plain
    delay after the last rejoin.  Yielding ``FaultConvoy(..., tail_dt=t)``
    is event-stream-identical to ``yield PinConvoy(...)`` followed by
    ``yield Delay(t)`` — the resume record is allocated at the exact
    causal point the unfused ``Delay`` push happened, with the same
    timestamp arithmetic — minus one generator resumption.  The command
    evaluates to ``npages``.  ``tail_dt == 0.0`` degenerates to plain
    :class:`PinConvoy` behaviour (inline resume at the last rejoin).
    """

    __slots__ = ("tail_dt",)

    def __init__(self, lock, hold_fn, batches, mm=None, npages: int = 0,
                 memo=None, tail_dt: float = 0.0):
        super().__init__(lock, hold_fn, batches, mm=mm, npages=npages,
                         memo=memo)
        if tail_dt < 0:
            raise SimError(f"negative tail delay {tail_dt!r}")
        self.tail_dt = tail_dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultConvoy({self.lock!r}, {len(self.batches)} batches, "
            f"tail={self.tail_dt})"
        )


class Join(Command):
    """Block until another process finishes; evaluates to its return value."""

    __slots__ = ("proc",)

    def __init__(self, proc: "SimProcess"):
        self.proc = proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Join({self.proc!r})"


# --------------------------------------------------------------------------
# Processes
# --------------------------------------------------------------------------

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"

# Dispatch-record kinds.  An event is (time, seq, kind, a, b) on the heap or
# (seq, kind, a, b) on the ready deque; ``a``/``b`` are kind-specific:
_K_RESUME = 0   # a=proc,    b=value      -> gen.send(value)
_K_THROW = 1    # a=proc,    b=exc        -> gen.throw(exc)
_K_CALL = 2     # a=fn,      b=None       -> fn()           (public schedule())
_K_DELIVER = 3  # a=mailbox, b=msg        -> mailbox.deliver(msg)
_K_CHAIN = 4    # a=proc,    b=d2         -> resume now (d2==0) or in d2
_K_RELEASE = 5  # a=proc,    b=(lock, d2) -> release lock, then chain d2
# Convoy records (a=_Convoy, b=None): the four hops of one pin batch.  They
# shadow the unfused stream record-for-record — grant (_K_RESUME there),
# release (_K_RELEASE), chain (_K_CHAIN), rejoin (_K_RESUME) — so counts
# and sequence-number allocation points are identical; only the generator
# stays parked until the last batch.
_K_CGRANT = 6    # lock granted: compute hold_time, schedule the release
_K_CRELEASE = 7  # hold elapsed: release the lock, chain to the rejoin
_K_CCHAIN = 8    # post-release: rejoin now (extra==0) or after extra
_K_CREJOIN = 9   # batch done: count pages, next acquire or resume the proc


class _Convoy:
    """Engine-side state of one process's in-flight :class:`PinConvoy`."""

    __slots__ = ("proc", "lock", "hold_fn", "batches", "idx", "mm", "npages",
                 "memo", "pure", "tail")

    def __init__(self, proc: "SimProcess", cmd: PinConvoy):
        self.proc = proc
        self.lock = cmd.lock
        self.hold_fn = cmd.hold_fn
        self.batches = cmd.batches
        self.idx = 0
        self.mm = cmd.mm
        self.npages = cmd.npages
        self.memo = cmd.memo
        self.pure = cmd.pure
        self.tail = getattr(cmd, "tail_dt", 0.0)


class SimProcess:
    """A schedulable coroutine plus the placement metadata layers hang off it.

    ``socket``/``core`` are assigned by the machine layer when the process is
    pinned; the mm-lock bounce model reads them straight off contenders, so
    they live here rather than in a side table.
    """

    __slots__ = (
        "sim",
        "gen",
        "name",
        "pid",
        "socket",
        "core",
        "state",
        "result",
        "error",
        "finish_time",
        "convoy",
        "_joiners",
        "_send",
        "_gthrow",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str, pid: int):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.pid = pid
        self.socket: int = 0
        self.core: int = 0
        self.state = _READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finish_time: Optional[float] = None
        #: in-flight PinConvoy state; mutexes route grants on it
        self.convoy: Optional[_Convoy] = None
        self._joiners: list[SimProcess] = []
        # Bound once: every resumption would otherwise pay two attribute
        # lookups (proc.gen.send) in the hottest line of the simulator.
        self._send = gen.send
        self._gthrow = gen.throw

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimProcess {self.name} pid={self.pid} {self.state}>"


class Simulator:
    """Single-clock event engine.

    Typical use::

        sim = Simulator()
        p = sim.spawn(worker(), name="w0")
        sim.run()
        assert p.done

    ``use_ready_queue=False`` disables the zero-delay fast path (every
    record goes through the heap); results are identical, only slower —
    the differential stress test relies on this.  ``use_pin_convoy=False``
    tells the kernel layers to keep their per-batch ``Acquire``/
    ``HoldRelease`` loops instead of yielding :class:`PinConvoy`, and
    ``use_convoy_burst=False`` keeps PinConvoy in record-at-a-time mode
    (no epoch fast-forward); all four combinations are bit-identical —
    the convoy differential battery relies on this.
    """

    def __init__(
        self,
        max_events: int = 200_000_000,
        use_ready_queue: bool = True,
        use_pin_convoy: bool = True,
        use_convoy_burst: bool = True,
    ):
        self.now: float = 0.0
        self.max_events = max_events
        self.events_processed = 0
        self._heap: list[tuple] = []
        self._ready: deque[tuple] = deque()
        self._use_ready = use_ready_queue
        self.use_pin_convoy = use_pin_convoy
        self._use_burst = use_convoy_burst
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)  # PIDs look like real PIDs
        self._procs: list[SimProcess] = []

    def reset(self) -> None:
        """Return the engine to its freshly-constructed state.

        Restarting ``_seq`` at zero is the load-bearing part: sequence
        numbers are the same-timestamp tie-breaker, so a warm engine must
        hand out the exact sequence stream a fresh engine would or event
        ordering (and every simulated microsecond downstream) diverges.
        """
        self.now = 0.0
        self.events_processed = 0
        self._heap.clear()
        self._ready.clear()
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)
        self._procs.clear()

    # -- scheduling --------------------------------------------------------

    def _push(self, dt: float, kind: int, a: Any, b: Any) -> None:
        """Schedule one dispatch record at ``now + dt``.

        The sequence number is allocated *here*, at the exact program point
        the old engine pushed its heap entry, so same-timestamp tie-breaking
        is unchanged.  Zero-delay records go to the FIFO ready deque, whose
        entries all carry the current timestamp; the run loop merges deque
        and heap by (time, seq).
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), kind, a, b))
        else:
            heapq.heappush(self._heap, (self.now + dt, next(self._seq), kind, a, b))

    def _schedule_resume(self, dt: float, proc: "SimProcess", value: Any) -> None:
        """Resume ``proc`` with ``value`` after ``dt`` (resources/channels).

        Open-codes :meth:`_push`: this is the lock-grant / message-wakeup
        path, hot enough that the extra method call shows up in profiles.
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), _K_RESUME, proc, value))
        else:
            heapq.heappush(
                self._heap, (self.now + dt, next(self._seq), _K_RESUME, proc, value)
            )

    def _schedule_throw(self, dt: float, proc: "SimProcess", exc: BaseException) -> None:
        """Resume ``proc`` by raising ``exc`` inside it after ``dt``."""
        self._push(dt, _K_THROW, proc, exc)

    def _schedule_deliver(self, dt: float, mailbox, msg) -> None:
        """Deliver ``msg`` to ``mailbox`` after ``dt`` (channel transit)."""
        self._push(dt, _K_DELIVER, mailbox, msg)

    def schedule(self, dt: float, fn: Callable[[], None]) -> None:
        """Run callback ``fn`` at ``now + dt``."""
        if dt < 0:
            raise SimError(f"cannot schedule in the past (dt={dt})")
        self._push(dt, _K_CALL, fn, None)

    def spawn(
        self,
        gen: Generator,
        name: Optional[str] = None,
        pid: Optional[int] = None,
        socket: int = 0,
        core: int = 0,
    ) -> SimProcess:
        """Register a generator as a process; it starts at the current time.

        ``pid``/``socket``/``core`` let the MPI layer spawn work *as* an
        existing logical rank (same address space, same placement).
        """
        if pid is None:
            pid = next(self._pid_counter)
        proc = SimProcess(self, gen, name or f"proc{pid}", pid)
        proc.socket = socket
        proc.core = core
        self._procs.append(proc)
        self._push(0.0, _K_RESUME, proc, None)
        return proc

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queues; returns the final clock value.

        Events scheduled at exactly ``until`` still run (including any
        zero-delay cascade they trigger); the clock parks at ``until`` when
        the next pending event lies beyond it.  Raises
        :class:`DeadlockError` if processes remain blocked with no pending
        events, which in this codebase always indicates a protocol bug
        (e.g. a collective waiting for a notification nobody sends).
        """
        heap = self._heap
        ready = self._ready
        ready_append = ready.append
        ready_pop = ready.popleft
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = self._seq.__next__
        use_ready = self._use_ready
        use_burst = self._use_burst
        max_events = self.max_events
        throw = self._throw
        push = self._push
        finish = self._finish
        dispatch = self._dispatch
        n = self.events_processed
        now = self.now
        if until is not None and now > until and (heap or ready):
            # Clock already past the horizon (a previous run() parked it
            # later): nothing to do, pending work stays pending.
            self.now = until
            return until
        try:
            while heap or ready:
                if ready and (
                    not heap or heap[0][0] > now or heap[0][1] > ready[0][0]
                ):
                    _, kind, a, b = ready_pop()
                else:
                    entry = heap[0]
                    t = entry[0]
                    if until is not None and t > until:
                        self.now = until
                        return until
                    heappop(heap)
                    self.now = now = t
                    kind = entry[2]
                    a = entry[3]
                    b = entry[4]
                n += 1
                if n > max_events:
                    raise SimError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                # Kind dispatch.  The resume path (and the commands a resumed
                # process most often yields) is open-coded below instead of
                # calling _resume/_dispatch/_push: three method calls per
                # event is the difference between ~1.0M and ~1.5M events/sec.
                # The scheduling effects are line-for-line those of
                # _dispatch — keep both in sync.
                if kind == _K_RESUME:
                    proc = a
                    value = b
                elif kind == _K_CHAIN:
                    # Continuation of a fused record: with no second delay
                    # the process resumes inside this very event (exactly
                    # where the unfused engine ran its send); otherwise the
                    # next hop is scheduled just like a yielded Delay.
                    if b == 0.0:
                        proc = a
                        value = None
                    else:
                        push(b, _K_RESUME, a, None)
                        continue
                elif kind == _K_RELEASE:
                    lock, extra = b
                    try:
                        lock._release(a)
                    except BaseException as exc:
                        finish(a, None, exc)
                    else:
                        push(0.0, _K_CHAIN, a, extra)
                    continue
                elif kind == _K_CRELEASE:
                    conv = a
                    lock = conv.lock
                    if (
                        use_burst
                        and not ready
                        and (lock._convoy_gen == lock.generation
                             or lock._convoy_closed())
                    ):
                        # Closed epoch, no pending same-time work: fast-
                        # forward the convoy until something external is
                        # due (or a member finishes and must be resumed).
                        delta, proc, value = self._convoy_burst(
                            kind, conv, until, n
                        )
                        n += delta
                        now = self.now
                        if proc is None:
                            continue
                        # fall through: resume the finished member
                    else:
                        try:
                            lock._release(conv.proc)
                        except BaseException as exc:
                            conv.proc.convoy = None
                            finish(conv.proc, None, exc)
                            continue
                        if use_ready:
                            ready_append((next_seq(), _K_CCHAIN, conv, None))
                        else:
                            heappush(
                                heap, (now, next_seq(), _K_CCHAIN, conv, None)
                            )
                        continue
                elif kind == _K_CCHAIN or kind == _K_CREJOIN:
                    conv = a
                    if kind == _K_CREJOIN and (
                        use_burst
                        and not ready
                        and (conv.lock._convoy_gen == conv.lock.generation
                             or conv.lock._convoy_closed())
                    ):
                        delta, proc, value = self._convoy_burst(
                            kind, conv, until, n
                        )
                        n += delta
                        now = self.now
                        if proc is None:
                            continue
                        # fall through: resume the finished member
                    else:
                        if kind == _K_CCHAIN:
                            extra = conv.batches[conv.idx][1]
                            if extra != 0.0:
                                heappush(
                                    heap,
                                    (now + extra, next_seq(),
                                     _K_CREJOIN, conv, None),
                                )
                                continue
                            # extra == 0: the rejoin runs inside this very
                            # event, exactly where the unfused engine ran
                            # its send.
                        mm = conv.mm
                        if mm is not None:
                            mm.pages_pinned += conv.batches[conv.idx][0]
                        conv.idx += 1
                        if conv.idx < len(conv.batches):
                            try:
                                conv.lock._acquire(conv.proc)
                            except BaseException as exc:
                                conv.proc.convoy = None
                                finish(conv.proc, None, exc)
                            continue
                        proc = conv.proc
                        proc.convoy = None
                        if conv.tail != 0.0:
                            # FaultConvoy: the pin-free copy tail replaces
                            # the unfused ``yield Delay(tail)`` — same seq
                            # allocation point, same timestamp sum.
                            heappush(
                                heap,
                                (now + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            continue
                        value = conv.npages
                        # fall through: resume with the pin-loop result
                elif kind == _K_CGRANT:
                    conv = a
                    hmemo = conv.memo
                    hold = None
                    if hmemo is not None:
                        # hold_fn declared pure in (pages, contention
                        # profile): a hit returns the exact float the
                        # call would have computed.
                        lk = conv.lock
                        hsame = lk._socket_counts.get(conv.proc.socket, 0)
                        hkey = (
                            conv.batches[conv.idx][0],
                            hsame,
                            (1 if lk.holder is not None else 0)
                            + len(lk._waiters) - hsame,
                        )
                        hold = hmemo.get(hkey)
                    if hold is None:
                        try:
                            hold = conv.hold_fn(
                                conv.batches[conv.idx][0], conv.proc
                            )
                            if hold < 0:
                                raise SimError(
                                    f"negative delay in hold ({hold!r})"
                                )
                        except BaseException as exc:
                            conv.proc.convoy = None
                            finish(conv.proc, None, exc)
                            continue
                        if hmemo is not None:
                            hmemo[hkey] = hold
                    if hold == 0.0 and use_ready:
                        ready_append((next_seq(), _K_CRELEASE, conv, None))
                    else:
                        heappush(
                            heap,
                            (now + hold, next_seq(), _K_CRELEASE, conv, None),
                        )
                    continue
                elif kind == _K_CALL:
                    a()
                    continue
                elif kind == _K_DELIVER:
                    a.deliver(b)
                    continue
                else:  # _K_THROW
                    throw(a, b)
                    continue
                # -- inline _resume(proc, value) --
                state = proc.state
                if state is _DONE or state is _FAILED:  # pragma: no cover
                    continue
                proc.state = _READY
                try:
                    cmd = proc._send(value)
                except StopIteration as stop:
                    finish(proc, stop.value, None)
                    continue
                except BaseException as exc:
                    finish(proc, None, exc)
                    continue
                # -- inline _dispatch(proc, cmd) for the hot commands --
                tc = cmd.__class__
                try:
                    if tc is Delay:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RESUME, proc, None)
                            )
                    elif tc is Acquire:
                        proc.state = _BLOCKED
                        cmd.lock._acquire(proc)
                    elif tc is HoldRelease:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        rec = (cmd.lock, cmd.extra_dt)
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RELEASE, proc, rec))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RELEASE, proc, rec)
                            )
                    elif tc is Release:
                        cmd.lock._release(proc)
                        proc.state = _BLOCKED
                        if use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(heap, (now, next_seq(), _K_RESUME, proc, None))
                    elif tc is DelayChain:
                        proc.state = _BLOCKED
                        dt = cmd.d1
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_CHAIN, proc, cmd.d2))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_CHAIN, proc, cmd.d2)
                            )
                    elif tc is PinConvoy or tc is FaultConvoy:
                        proc.state = _BLOCKED
                        proc.convoy = _Convoy(proc, cmd)
                        cmd.lock._acquire(proc)
                    else:
                        dispatch(proc, cmd)
                except BaseException as exc:
                    finish(proc, None, exc)
        finally:
            self.events_processed = n
        blocked = [p for p in self._procs if p.state == _BLOCKED]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"simulation deadlock at t={self.now:.3f}us: "
                f"{len(blocked)} blocked process(es): {names}"
            )
        return self.now

    def run_all(self, procs: Iterable[SimProcess]) -> float:
        """Run to completion and re-raise the first process failure, if any.

        A process dying mid-protocol usually strands its peers, so a
        resulting deadlock is reported as the *root-cause* failure (with
        the deadlock chained as context) rather than as DeadlockError.
        """
        procs = list(procs)
        try:
            self.run()
        except DeadlockError as dead:
            for p in procs:
                if p.state == _FAILED:
                    raise p.error from dead  # type: ignore[misc]
            raise
        for p in procs:
            if p.state == _FAILED:
                raise p.error  # type: ignore[misc]
            if not p.done:
                raise SimError(f"process {p.name} never completed")
        return self.now

    # -- convoy fast-forward -------------------------------------------------

    def _convoy_burst(self, kind: int, conv: _Convoy, until, n: int):
        """Fast-forward a closed convoy epoch without the run-loop machinery.

        Precondition (checked by the caller): the ready deque is empty and
        every contender of ``conv.lock`` is a convoy member of that lock,
        so until the next *real* heap record is due, the only runnable
        events are this record and the convoy records it causally
        produces.  Those are processed here in (time, seq) order: sequence
        numbers still come off the global counter at the same causal
        points, hold times are still computed against live mutex state at
        grant time, the clock still advances per event, and the float
        additions (``now + hold``, ``now + extra``) happen in the same
        order on the same values — so timestamps, lock statistics, FIFO
        grant order and event counts are bit-identical to record-at-a-time
        execution.  The loop just never touches the big heap or the kind
        dispatch, and nothing else can run meanwhile: no real record is
        due, and convoy processing schedules nothing external.

        The loop merges two sources in (time, seq) order: its local heap
        of records it created, and — because earlier bursts/record-mode
        stretches park convoy records in the real heap — same-epoch
        convoy records sitting at the top of the real heap, which it
        consumes directly.  Everything pre-burst carries a smaller
        sequence number than anything burst-allocated, so at time ties
        the real record correctly runs first, exactly as the run loop's
        merge rule would order it.

        Stops — materialising pending convoy records into the real heap
        verbatim (they already have real-record format and causally
        ordered sequence numbers) — when the real heap's next event is
        *not* a record of this convoy and is due at or before the next
        convoy record, when ``until`` would be crossed, or when a member
        finishes its last batch.  Returns ``(extra_events, proc, value)``;
        ``proc`` is non-None in the finished-member case and must be
        resumed with ``value`` by the caller.
        """
        heap = self._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        next_seq = self._seq.__next__
        max_events = self.max_events
        lock = conv.lock
        now = self.now
        cnt = 0
        vheap: list[tuple] = []

        while True:
            if kind == _K_CRELEASE:
                nxt = conv.lock._release_core(conv.proc)
                if nxt is not None:
                    heappush(
                        vheap, (now, next_seq(), _K_CGRANT, nxt.convoy, None)
                    )
                heappush(vheap, (now, next_seq(), _K_CCHAIN, conv, None))
            elif kind == _K_CGRANT:
                proc = conv.proc
                pages = conv.batches[conv.idx][0]
                hmemo = conv.memo
                hold = None
                if hmemo is not None:
                    hsame = lock._socket_counts.get(proc.socket, 0)
                    hkey = (
                        pages,
                        hsame,
                        (1 if lock.holder is not None else 0)
                        + len(lock._waiters) - hsame,
                    )
                    hold = hmemo.get(hkey)
                if hold is None:
                    try:
                        hold = conv.hold_fn(pages, proc)
                        if hold < 0:
                            raise SimError(f"negative delay in hold ({hold!r})")
                    except BaseException as exc:
                        proc.convoy = None
                        for rec in vheap:
                            heappush(heap, rec)
                        self._finish(proc, None, exc)
                        return cnt, None, None
                    if hmemo is not None:
                        hmemo[hkey] = hold
                if not conv.pure or vheap:
                    heappush(
                        vheap, (now + hold, next_seq(), _K_CRELEASE, conv, None)
                    )
                else:
                    cnt, done, fproc, fval = self._convoy_steady(
                        now + hold, next_seq(), conv, vheap, until, cnt,
                        max_events - n,
                    )
                    now = self.now
                    if done:
                        return cnt, fproc, fval
            else:  # _K_CCHAIN / _K_CREJOIN
                rejoin = True
                if kind == _K_CCHAIN:
                    extra = conv.batches[conv.idx][1]
                    if extra != 0.0:
                        heappush(
                            vheap,
                            (now + extra, next_seq(), _K_CREJOIN, conv, None),
                        )
                        rejoin = False
                if rejoin:
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx < len(conv.batches):
                        if conv.lock._acquire_core(conv.proc):
                            heappush(
                                vheap, (now, next_seq(), _K_CGRANT, conv, None)
                            )
                    else:
                        conv.proc.convoy = None
                        for rec in vheap:
                            heappush(heap, rec)
                        if conv.tail != 0.0:
                            # Tail resume seq comes after the parked
                            # records' (all allocated earlier), exactly as
                            # record-mode ordering has it.
                            heappush(
                                heap,
                                (now + conv.tail, next_seq(),
                                 _K_RESUME, conv.proc, conv.npages),
                            )
                            return cnt, None, None
                        return cnt, conv.proc, conv.npages
                # Steady-state entry: a round just closed and the only
                # pending virtual record is a pure convoy's release —
                # from here the epoch runs as straight-line rounds.
                if len(vheap) == 1:
                    rec = vheap[0]
                    if rec[2] == _K_CRELEASE and rec[3].pure:
                        del vheap[0]
                        cnt, done, fproc, fval = self._convoy_steady(
                            rec[0], rec[1], rec[3], vheap, until, cnt,
                            max_events - n,
                        )
                        now = self.now
                        if done:
                            return cnt, fproc, fval
            # -- advance to the next convoy record, or stop --
            head = vheap[0] if vheap else None
            from_real = False
            if heap:
                h = heap[0]
                if head is None or h[0] <= head[0]:
                    hk = h[2]
                    if _K_CGRANT <= hk <= _K_CREJOIN and h[3].lock is lock:
                        # Same-epoch record parked in the real heap (by an
                        # earlier burst or record-mode stretch): consume it
                        # here instead of stopping on it.
                        head = h
                        from_real = True
                    else:
                        for rec in vheap:
                            heappush(heap, rec)
                        return cnt, None, None
            if head is None:
                return cnt, None, None
            if until is not None and head[0] > until:
                for rec in vheap:
                    heappush(heap, rec)
                return cnt, None, None
            if from_real:
                heappop(heap)
            else:
                heappop(vheap)
            self.now = now = head[0]
            cnt += 1
            if n + cnt > max_events:
                raise SimError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            kind = head[2]
            conv = head[3]

    def _convoy_steady(self, t_rel, seq_r, rconv, vheap, until, cnt, limit):
        """Closed form of the steady state: pure pin convoy rounds.

        Called by :meth:`_convoy_burst` when the *only* pending virtual
        record is a pure convoy's release at ``(t_rel, seq_r)``.  In a
        pure convoy (every ``extra_dt == 0.0``) nothing is ever in
        flight except the current holder's release — the releaser's
        grant, chain and re-enqueue all happen at the release timestamp
        — so the event order is fully determined and each round is
        three records of straight-line code: one float add for the
        clock (``t_rel + hold``, the same operands the merge would
        add), the same mutex state transitions, and sequence numbers
        drawn off the global counter at the same causal points, with no
        heap traffic at all.  Timestamps, lock statistics, FIFO grant
        order and event counts stay bit-identical to the
        record-at-a-time merge.

        The mutex transitions are ``Mutex._release_core`` /
        ``_acquire_core`` inlined (kept in lockstep with those methods):
        the holder-identity guards drop out — the releaser *is* the
        holder and the re-enqueuer is not, by construction — and the
        scalar bookkeeping (generation, acquisitions, total_wait_us,
        max_contenders) runs on locals, written back on every exit.
        Deferring those writes is unobservable: no other process runs
        mid-steady-state, and the hold-model purity contract (see
        :class:`PinConvoy`) means ``hold_fn`` reads only the contender
        profile, which *is* maintained live (counts/holder/waiters).
        The float accumulation into ``total_wait_us`` happens in the
        same order on the same running value, so it is bit-exact.
        Within the loop every acquire/release is by a member of the
        closed epoch, so ``_convoy_gen`` tracks ``generation`` — both
        are written back as one value.

        Returns ``(cnt, done, proc, value)``.  ``done=False`` means the
        loop bailed back to the general merge — the pending record(s)
        were re-parked in ``vheap`` — because a real-heap record is
        due, ``until`` would be crossed, the event budget (``limit``,
        relative to the burst's base count) nears, or a non-pure convoy
        was granted.  ``done=True`` means the burst must end: a member
        finished (``proc``/``value`` to resume) or its hold_fn raised
        (``proc=None``, process already failed).
        """
        heap = self._heap
        heappush = heapq.heappush
        next_seq = self._seq.__next__
        lock = rconv.lock
        counts = lock._socket_counts
        waiters = lock._waiters
        gen = lock.generation
        acq = lock.acquisitions
        wait_us = lock.total_wait_us
        mc = lock.max_contenders
        try:
            while True:
                if (
                    (heap and heap[0][0] <= t_rel)
                    or (until is not None and t_rel > until)
                    or cnt + 3 > limit
                ):
                    heappush(vheap, (t_rel, seq_r, _K_CRELEASE, rconv, None))
                    return cnt, False, None, None
                conv = rconv
                proc = conv.proc
                self.now = t_rel
                cnt += 1  # release record
                # release: holder (proc) leaves the contender set
                psock = proc.socket
                left = counts[psock] - 1
                if left:
                    counts[psock] = left
                else:
                    del counts[psock]
                gen += 1
                if waiters:
                    nxt, since = waiters.popleft()
                    lock.holder = nxt
                    acq += 1
                    wait_us += t_rel - since
                    seq_g = next_seq()
                    seq_c = next_seq()
                    gconv = nxt.convoy
                    if not gconv.pure:
                        # Mixed epoch: hand grant + chain to the merge.
                        heappush(
                            vheap, (t_rel, seq_g, _K_CGRANT, gconv, None)
                        )
                        heappush(
                            vheap, (t_rel, seq_c, _K_CCHAIN, conv, None)
                        )
                        return cnt, False, None, None
                    cnt += 1  # grant record for nxt, at t_rel
                    grantee = nxt
                else:
                    # Lone member: release -> chain (inline rejoin) ->
                    # re-acquire of the free lock -> grant, all at t_rel.
                    nxt = None
                    next_seq()  # the chain record's seq
                    cnt += 1    # chain record
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx >= len(conv.batches):
                        proc.convoy = None
                        lock.holder = None
                        if conv.tail != 0.0:
                            heappush(
                                heap,
                                (t_rel + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            return cnt, True, None, None
                        return cnt, True, proc, conv.npages
                    # re-acquire of the free lock: immediate grant (the
                    # holder write cancels out, proc -> None -> proc)
                    counts[psock] = left + 1
                    gen += 1
                    acq += 1
                    if mc < 1:
                        mc = 1
                    next_seq()  # the grant record's seq
                    cnt += 1    # grant record
                    grantee = proc
                    gconv = conv
                # Hold for the newly granted member, computed before the
                # releaser rejoins the queue — the same state the
                # record-mode grant handler sees.
                pages = gconv.batches[gconv.idx][0]
                hmemo = gconv.memo
                hold = None
                if hmemo is not None:
                    hsame = counts.get(grantee.socket, 0)
                    hkey = (pages, hsame, 1 + len(waiters) - hsame)
                    hold = hmemo.get(hkey)
                if hold is None:
                    try:
                        hold = gconv.hold_fn(pages, grantee)
                        if hold < 0:
                            raise SimError(f"negative delay in hold ({hold!r})")
                    except BaseException as exc:
                        grantee.convoy = None
                        if nxt is not None:
                            # the releaser's chain is still due
                            heappush(
                                heap, (t_rel, seq_c, _K_CCHAIN, conv, None)
                            )
                        self._finish(grantee, None, exc)
                        return cnt, True, None, None
                    if hmemo is not None:
                        hmemo[hkey] = hold
                seq_r = next_seq()  # the next release record's seq
                t_rel = t_rel + hold
                if nxt is not None:
                    # chain record: the releaser rejoins
                    cnt += 1
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx < len(conv.batches):
                        # re-enqueue behind nxt
                        counts[psock] = counts.get(psock, 0) + 1
                        gen += 1
                        waiters.append((proc, self.now))
                        nw = 1 + len(waiters)
                        if nw > mc:
                            mc = nw
                    else:
                        # Releaser finished mid-epoch: park the new
                        # holder's release and hand the member back for
                        # its generator resumption.
                        proc.convoy = None
                        heappush(
                            heap, (t_rel, seq_r, _K_CRELEASE, gconv, None)
                        )
                        if conv.tail != 0.0:
                            # self.now is still the release/chain timestamp
                            # (t_rel was advanced to the new holder's
                            # release time above); the tail runs from the
                            # rejoin, and its seq follows seq_r — the
                            # order record-mode allocates them in.
                            heappush(
                                heap,
                                (self.now + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            return cnt, True, None, None
                        return cnt, True, proc, conv.npages
                rconv = gconv
        finally:
            lock.generation = gen
            lock._convoy_gen = gen
            lock.acquisitions = acq
            lock.total_wait_us = wait_us
            lock.max_contenders = mc

    # -- process stepping ---------------------------------------------------

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # process raised: record and propagate
            self._finish(proc, None, exc)
            return
        self._dispatch(proc, cmd)

    def _throw(self, proc: SimProcess, exc: BaseException) -> None:
        """Resume a process by raising ``exc`` inside it (used by channels)."""
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._gthrow(exc)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:
            self._finish(proc, None, err)
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        # Protocol errors (double release, bad iovec, ...) fail the process
        # that issued the command, like a raise at the yield.
        try:
            tc = type(cmd)
            if tc is Delay:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RESUME, proc, None)
            elif tc is Acquire:
                proc.state = _BLOCKED
                cmd.lock._acquire(proc)
            elif tc is HoldRelease:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RELEASE, proc, (cmd.lock, cmd.extra_dt))
            elif tc is DelayChain:
                proc.state = _BLOCKED
                self._push(cmd.d1, _K_CHAIN, proc, cmd.d2)
            elif tc is PinConvoy or tc is FaultConvoy:
                proc.state = _BLOCKED
                proc.convoy = _Convoy(proc, cmd)
                cmd.lock._acquire(proc)
            elif tc is Release:
                cmd.lock._release(proc)
                # Releasing never blocks; continue the releaser via a fresh
                # record so the granted waiter (scheduled first) runs at the
                # same timestamp.
                proc.state = _BLOCKED
                self._push(0.0, _K_RESUME, proc, None)
            elif tc is Join:
                target = cmd.proc
                proc.state = _BLOCKED
                if target.state == _DONE:
                    self._push(0.0, _K_RESUME, proc, target.result)
                elif target.state == _FAILED:
                    self._push(0.0, _K_THROW, proc, target.error)
                else:
                    target._joiners.append(proc)
            elif isinstance(cmd, Command):
                # Channel commands (Send/Recv) know how to dispatch themselves
                # to avoid a circular import; see repro.sim.channels.
                proc.state = _BLOCKED
                cmd._dispatch(self, proc)  # type: ignore[attr-defined]
            else:
                self._finish(
                    proc,
                    None,
                    SimError(f"process {proc.name} yielded non-command {cmd!r}"),
                )
        except BaseException as exc:
            self._finish(proc, None, exc)

    def _finish(
        self, proc: SimProcess, result: Any, error: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.error = error
        proc.state = _FAILED if error is not None else _DONE
        proc.finish_time = self.now
        joiners, proc._joiners = proc._joiners, []
        if error is not None:
            for j in joiners:
                self._push(0.0, _K_THROW, j, error)
        else:
            for j in joiners:
                self._push(0.0, _K_RESUME, j, result)
