"""Event loop and process model for the discrete-event simulator.

The design follows the classic process-interaction style (SimPy-like) but is
purpose-built and dependency-free:

* Time is a ``float`` in **microseconds** — the unit used throughout the
  paper's tables and our model parameters.
* A :class:`SimProcess` wraps a generator.  Each ``yield`` hands a *command*
  to the engine; the engine schedules the resumption.  ``return value`` from
  the generator becomes the process result (retrievable via ``Join``).
* Every resumption is still an *event* — there is no re-entrancy and no
  unbounded recursion when locks are released — but zero-delay resumptions
  (spawns, lock grants, release continuations, join wakeups, message
  notifications) ride a FIFO **ready deque** instead of the time heap, and
  events are closure-free ``(time, seq, kind, a, b)`` dispatch records
  rather than lambda allocations.

Ordering is *identical* to a pure-heap engine: a global monotonic sequence
number is allocated at the moment an event is scheduled (exactly where the
old heap push happened), and the run loop merges the deque and the heap by
``(time, seq)``.  Since every ready entry carries the current timestamp and
sequence numbers are allocated in order, the deque is always seq-sorted and
the merge reproduces heap order bit-for-bit — the engine's event
interleaving (and therefore every simulated microsecond downstream, via
FIFO lock queues) is unchanged.  ``Simulator(use_ready_queue=False)`` routes
zero-delay records through the heap instead, which
``tests/test_engine_ordering.py`` uses to assert the equivalence on random
workloads.

The engine knows nothing about machines, kernels, or MPI — those layers are
implemented as generators that run *on* it.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Delay",
    "DelayChain",
    "HoldRelease",
    "Acquire",
    "Release",
    "Join",
    "SimProcess",
    "Simulator",
]


class SimError(RuntimeError):
    """Base class for simulation protocol errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""


# --------------------------------------------------------------------------
# Commands.  Plain slotted classes: created in hot loops.
# --------------------------------------------------------------------------


class Command:
    """Marker base class for values a process may yield to the engine."""

    __slots__ = ()


class Delay(Command):
    """Suspend the yielding process for ``dt`` microseconds of virtual time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimError(f"negative delay {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt})"


class DelayChain(Command):
    """Two back-to-back delays in one engine round-trip.

    With ``d2 > 0`` this produces the *same* event stream as
    ``yield Delay(d1); yield Delay(d2)`` — same timestamps, same tie-breaker
    sequence numbers, same event count — minus one generator resumption:
    the intermediate event is a chain record, not a ``send``.  With
    ``d2 == 0`` the second hop is skipped entirely (the continuation runs
    inside the first event), making it equivalent to ``Delay(d1)`` alone.
    The kernel fast path uses this for the syscall-entry + access-check
    pair, which brackets no observable state.
    """

    __slots__ = ("d1", "d2")

    def __init__(self, d1: float, d2: float):
        if d1 < 0 or d2 < 0:
            raise SimError(f"negative delay in chain ({d1!r}, {d2!r})")
        self.d1 = d1
        self.d2 = d2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DelayChain({self.d1}, {self.d2})"


class HoldRelease(Command):
    """Hold ``lock`` for ``dt`` more microseconds, release it, then resume
    after a further ``extra_dt``.

    Event-stream-identical to ``yield Delay(dt); yield Release(lock)``
    (followed by ``yield Delay(extra_dt)`` when ``extra_dt > 0``), but the
    delay-then-release hop is a dispatch record instead of a generator
    resumption: the release (and the FIFO grant to the next waiter) happens
    at exactly the same timestamp and sequence position as before.  The
    kernel uses this for the pin critical section so an uncontended batch
    costs two generator resumptions instead of four.
    """

    __slots__ = ("lock", "dt", "extra_dt")

    def __init__(self, lock, dt: float, extra_dt: float = 0.0):
        if dt < 0 or extra_dt < 0:
            raise SimError(f"negative delay in hold ({dt!r}, {extra_dt!r})")
        self.lock = lock
        self.dt = dt
        self.extra_dt = extra_dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HoldRelease({self.lock!r}, {self.dt}, {self.extra_dt})"


class Acquire(Command):
    """Block until the given :class:`~repro.sim.resources.Mutex` is granted."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Acquire({self.lock!r})"


class Release(Command):
    """Release a held mutex (the engine resumes the next waiter, FIFO)."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Release({self.lock!r})"


class Join(Command):
    """Block until another process finishes; evaluates to its return value."""

    __slots__ = ("proc",)

    def __init__(self, proc: "SimProcess"):
        self.proc = proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Join({self.proc!r})"


# --------------------------------------------------------------------------
# Processes
# --------------------------------------------------------------------------

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"

# Dispatch-record kinds.  An event is (time, seq, kind, a, b) on the heap or
# (seq, kind, a, b) on the ready deque; ``a``/``b`` are kind-specific:
_K_RESUME = 0   # a=proc,    b=value      -> gen.send(value)
_K_THROW = 1    # a=proc,    b=exc        -> gen.throw(exc)
_K_CALL = 2     # a=fn,      b=None       -> fn()           (public schedule())
_K_DELIVER = 3  # a=mailbox, b=msg        -> mailbox.deliver(msg)
_K_CHAIN = 4    # a=proc,    b=d2         -> resume now (d2==0) or in d2
_K_RELEASE = 5  # a=proc,    b=(lock, d2) -> release lock, then chain d2


class SimProcess:
    """A schedulable coroutine plus the placement metadata layers hang off it.

    ``socket``/``core`` are assigned by the machine layer when the process is
    pinned; the mm-lock bounce model reads them straight off contenders, so
    they live here rather than in a side table.
    """

    __slots__ = (
        "sim",
        "gen",
        "name",
        "pid",
        "socket",
        "core",
        "state",
        "result",
        "error",
        "finish_time",
        "_joiners",
        "_send",
        "_gthrow",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str, pid: int):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.pid = pid
        self.socket: int = 0
        self.core: int = 0
        self.state = _READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finish_time: Optional[float] = None
        self._joiners: list[SimProcess] = []
        # Bound once: every resumption would otherwise pay two attribute
        # lookups (proc.gen.send) in the hottest line of the simulator.
        self._send = gen.send
        self._gthrow = gen.throw

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimProcess {self.name} pid={self.pid} {self.state}>"


class Simulator:
    """Single-clock event engine.

    Typical use::

        sim = Simulator()
        p = sim.spawn(worker(), name="w0")
        sim.run()
        assert p.done

    ``use_ready_queue=False`` disables the zero-delay fast path (every
    record goes through the heap); results are identical, only slower —
    the differential stress test relies on this.
    """

    def __init__(self, max_events: int = 200_000_000, use_ready_queue: bool = True):
        self.now: float = 0.0
        self.max_events = max_events
        self.events_processed = 0
        self._heap: list[tuple] = []
        self._ready: deque[tuple] = deque()
        self._use_ready = use_ready_queue
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)  # PIDs look like real PIDs
        self._procs: list[SimProcess] = []

    def reset(self) -> None:
        """Return the engine to its freshly-constructed state.

        Restarting ``_seq`` at zero is the load-bearing part: sequence
        numbers are the same-timestamp tie-breaker, so a warm engine must
        hand out the exact sequence stream a fresh engine would or event
        ordering (and every simulated microsecond downstream) diverges.
        """
        self.now = 0.0
        self.events_processed = 0
        self._heap.clear()
        self._ready.clear()
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)
        self._procs.clear()

    # -- scheduling --------------------------------------------------------

    def _push(self, dt: float, kind: int, a: Any, b: Any) -> None:
        """Schedule one dispatch record at ``now + dt``.

        The sequence number is allocated *here*, at the exact program point
        the old engine pushed its heap entry, so same-timestamp tie-breaking
        is unchanged.  Zero-delay records go to the FIFO ready deque, whose
        entries all carry the current timestamp; the run loop merges deque
        and heap by (time, seq).
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), kind, a, b))
        else:
            heapq.heappush(self._heap, (self.now + dt, next(self._seq), kind, a, b))

    def _schedule_resume(self, dt: float, proc: "SimProcess", value: Any) -> None:
        """Resume ``proc`` with ``value`` after ``dt`` (resources/channels).

        Open-codes :meth:`_push`: this is the lock-grant / message-wakeup
        path, hot enough that the extra method call shows up in profiles.
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), _K_RESUME, proc, value))
        else:
            heapq.heappush(
                self._heap, (self.now + dt, next(self._seq), _K_RESUME, proc, value)
            )

    def _schedule_throw(self, dt: float, proc: "SimProcess", exc: BaseException) -> None:
        """Resume ``proc`` by raising ``exc`` inside it after ``dt``."""
        self._push(dt, _K_THROW, proc, exc)

    def _schedule_deliver(self, dt: float, mailbox, msg) -> None:
        """Deliver ``msg`` to ``mailbox`` after ``dt`` (channel transit)."""
        self._push(dt, _K_DELIVER, mailbox, msg)

    def schedule(self, dt: float, fn: Callable[[], None]) -> None:
        """Run callback ``fn`` at ``now + dt``."""
        if dt < 0:
            raise SimError(f"cannot schedule in the past (dt={dt})")
        self._push(dt, _K_CALL, fn, None)

    def spawn(
        self,
        gen: Generator,
        name: Optional[str] = None,
        pid: Optional[int] = None,
        socket: int = 0,
        core: int = 0,
    ) -> SimProcess:
        """Register a generator as a process; it starts at the current time.

        ``pid``/``socket``/``core`` let the MPI layer spawn work *as* an
        existing logical rank (same address space, same placement).
        """
        if pid is None:
            pid = next(self._pid_counter)
        proc = SimProcess(self, gen, name or f"proc{pid}", pid)
        proc.socket = socket
        proc.core = core
        self._procs.append(proc)
        self._push(0.0, _K_RESUME, proc, None)
        return proc

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queues; returns the final clock value.

        Events scheduled at exactly ``until`` still run (including any
        zero-delay cascade they trigger); the clock parks at ``until`` when
        the next pending event lies beyond it.  Raises
        :class:`DeadlockError` if processes remain blocked with no pending
        events, which in this codebase always indicates a protocol bug
        (e.g. a collective waiting for a notification nobody sends).
        """
        heap = self._heap
        ready = self._ready
        ready_append = ready.append
        ready_pop = ready.popleft
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = self._seq.__next__
        use_ready = self._use_ready
        max_events = self.max_events
        throw = self._throw
        push = self._push
        finish = self._finish
        dispatch = self._dispatch
        n = self.events_processed
        now = self.now
        if until is not None and now > until and (heap or ready):
            # Clock already past the horizon (a previous run() parked it
            # later): nothing to do, pending work stays pending.
            self.now = until
            return until
        try:
            while heap or ready:
                if ready and (
                    not heap or heap[0][0] > now or heap[0][1] > ready[0][0]
                ):
                    _, kind, a, b = ready_pop()
                else:
                    entry = heap[0]
                    t = entry[0]
                    if until is not None and t > until:
                        self.now = until
                        return until
                    heappop(heap)
                    self.now = now = t
                    kind = entry[2]
                    a = entry[3]
                    b = entry[4]
                n += 1
                if n > max_events:
                    raise SimError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                # Kind dispatch.  The resume path (and the commands a resumed
                # process most often yields) is open-coded below instead of
                # calling _resume/_dispatch/_push: three method calls per
                # event is the difference between ~1.0M and ~1.5M events/sec.
                # The scheduling effects are line-for-line those of
                # _dispatch — keep both in sync.
                if kind == _K_RESUME:
                    proc = a
                    value = b
                elif kind == _K_CHAIN:
                    # Continuation of a fused record: with no second delay
                    # the process resumes inside this very event (exactly
                    # where the unfused engine ran its send); otherwise the
                    # next hop is scheduled just like a yielded Delay.
                    if b == 0.0:
                        proc = a
                        value = None
                    else:
                        push(b, _K_RESUME, a, None)
                        continue
                elif kind == _K_RELEASE:
                    lock, extra = b
                    try:
                        lock._release(a)
                    except BaseException as exc:
                        finish(a, None, exc)
                    else:
                        push(0.0, _K_CHAIN, a, extra)
                    continue
                elif kind == _K_CALL:
                    a()
                    continue
                elif kind == _K_DELIVER:
                    a.deliver(b)
                    continue
                else:  # _K_THROW
                    throw(a, b)
                    continue
                # -- inline _resume(proc, value) --
                state = proc.state
                if state is _DONE or state is _FAILED:  # pragma: no cover
                    continue
                proc.state = _READY
                try:
                    cmd = proc._send(value)
                except StopIteration as stop:
                    finish(proc, stop.value, None)
                    continue
                except BaseException as exc:
                    finish(proc, None, exc)
                    continue
                # -- inline _dispatch(proc, cmd) for the hot commands --
                tc = cmd.__class__
                try:
                    if tc is Delay:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RESUME, proc, None)
                            )
                    elif tc is Acquire:
                        proc.state = _BLOCKED
                        cmd.lock._acquire(proc)
                    elif tc is HoldRelease:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        rec = (cmd.lock, cmd.extra_dt)
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RELEASE, proc, rec))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RELEASE, proc, rec)
                            )
                    elif tc is Release:
                        cmd.lock._release(proc)
                        proc.state = _BLOCKED
                        if use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(heap, (now, next_seq(), _K_RESUME, proc, None))
                    elif tc is DelayChain:
                        proc.state = _BLOCKED
                        dt = cmd.d1
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_CHAIN, proc, cmd.d2))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_CHAIN, proc, cmd.d2)
                            )
                    else:
                        dispatch(proc, cmd)
                except BaseException as exc:
                    finish(proc, None, exc)
        finally:
            self.events_processed = n
        blocked = [p for p in self._procs if p.state == _BLOCKED]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"simulation deadlock at t={self.now:.3f}us: "
                f"{len(blocked)} blocked process(es): {names}"
            )
        return self.now

    def run_all(self, procs: Iterable[SimProcess]) -> float:
        """Run to completion and re-raise the first process failure, if any.

        A process dying mid-protocol usually strands its peers, so a
        resulting deadlock is reported as the *root-cause* failure (with
        the deadlock chained as context) rather than as DeadlockError.
        """
        procs = list(procs)
        try:
            self.run()
        except DeadlockError as dead:
            for p in procs:
                if p.state == _FAILED:
                    raise p.error from dead  # type: ignore[misc]
            raise
        for p in procs:
            if p.state == _FAILED:
                raise p.error  # type: ignore[misc]
            if not p.done:
                raise SimError(f"process {p.name} never completed")
        return self.now

    # -- process stepping ---------------------------------------------------

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # process raised: record and propagate
            self._finish(proc, None, exc)
            return
        self._dispatch(proc, cmd)

    def _throw(self, proc: SimProcess, exc: BaseException) -> None:
        """Resume a process by raising ``exc`` inside it (used by channels)."""
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._gthrow(exc)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:
            self._finish(proc, None, err)
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        # Protocol errors (double release, bad iovec, ...) fail the process
        # that issued the command, like a raise at the yield.
        try:
            tc = type(cmd)
            if tc is Delay:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RESUME, proc, None)
            elif tc is Acquire:
                proc.state = _BLOCKED
                cmd.lock._acquire(proc)
            elif tc is HoldRelease:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RELEASE, proc, (cmd.lock, cmd.extra_dt))
            elif tc is DelayChain:
                proc.state = _BLOCKED
                self._push(cmd.d1, _K_CHAIN, proc, cmd.d2)
            elif tc is Release:
                cmd.lock._release(proc)
                # Releasing never blocks; continue the releaser via a fresh
                # record so the granted waiter (scheduled first) runs at the
                # same timestamp.
                proc.state = _BLOCKED
                self._push(0.0, _K_RESUME, proc, None)
            elif tc is Join:
                target = cmd.proc
                proc.state = _BLOCKED
                if target.state == _DONE:
                    self._push(0.0, _K_RESUME, proc, target.result)
                elif target.state == _FAILED:
                    self._push(0.0, _K_THROW, proc, target.error)
                else:
                    target._joiners.append(proc)
            elif isinstance(cmd, Command):
                # Channel commands (Send/Recv) know how to dispatch themselves
                # to avoid a circular import; see repro.sim.channels.
                proc.state = _BLOCKED
                cmd._dispatch(self, proc)  # type: ignore[attr-defined]
            else:
                self._finish(
                    proc,
                    None,
                    SimError(f"process {proc.name} yielded non-command {cmd!r}"),
                )
        except BaseException as exc:
            self._finish(proc, None, exc)

    def _finish(
        self, proc: SimProcess, result: Any, error: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.error = error
        proc.state = _FAILED if error is not None else _DONE
        proc.finish_time = self.now
        joiners, proc._joiners = proc._joiners, []
        if error is not None:
            for j in joiners:
                self._push(0.0, _K_THROW, j, error)
        else:
            for j in joiners:
                self._push(0.0, _K_RESUME, j, result)
