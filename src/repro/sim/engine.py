"""Event loop and process model for the discrete-event simulator.

The design follows the classic process-interaction style (SimPy-like) but is
purpose-built and dependency-free:

* Time is a ``float`` in **microseconds** — the unit used throughout the
  paper's tables and our model parameters.
* A :class:`SimProcess` wraps a generator.  Each ``yield`` hands a *command*
  to the engine; the engine schedules the resumption.  ``return value`` from
  the generator becomes the process result (retrievable via ``Join``).
* Every resumption goes through the event heap, even zero-delay ones.  This
  keeps semantics simple (no re-entrancy, no unbounded recursion when locks
  are released) at the price of a constant-factor event overhead, which
  profiling showed is irrelevant next to generator dispatch itself.

The engine knows nothing about machines, kernels, or MPI — those layers are
implemented as generators that run *on* it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Delay",
    "Acquire",
    "Release",
    "Join",
    "SimProcess",
    "Simulator",
]


class SimError(RuntimeError):
    """Base class for simulation protocol errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""


# --------------------------------------------------------------------------
# Commands.  Plain slotted classes: created in hot loops.
# --------------------------------------------------------------------------


class Command:
    """Marker base class for values a process may yield to the engine."""

    __slots__ = ()


class Delay(Command):
    """Suspend the yielding process for ``dt`` microseconds of virtual time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimError(f"negative delay {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt})"


class Acquire(Command):
    """Block until the given :class:`~repro.sim.resources.Mutex` is granted."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Acquire({self.lock!r})"


class Release(Command):
    """Release a held mutex (the engine resumes the next waiter, FIFO)."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Release({self.lock!r})"


class Join(Command):
    """Block until another process finishes; evaluates to its return value."""

    __slots__ = ("proc",)

    def __init__(self, proc: "SimProcess"):
        self.proc = proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Join({self.proc!r})"


# --------------------------------------------------------------------------
# Processes
# --------------------------------------------------------------------------

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"


class SimProcess:
    """A schedulable coroutine plus the placement metadata layers hang off it.

    ``socket``/``core`` are assigned by the machine layer when the process is
    pinned; the mm-lock bounce model reads them straight off contenders, so
    they live here rather than in a side table.
    """

    __slots__ = (
        "sim",
        "gen",
        "name",
        "pid",
        "socket",
        "core",
        "state",
        "result",
        "error",
        "finish_time",
        "_joiners",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str, pid: int):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.pid = pid
        self.socket: int = 0
        self.core: int = 0
        self.state = _READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finish_time: Optional[float] = None
        self._joiners: list[SimProcess] = []

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimProcess {self.name} pid={self.pid} {self.state}>"


class Simulator:
    """Single-clock event engine.

    Typical use::

        sim = Simulator()
        p = sim.spawn(worker(), name="w0")
        sim.run()
        assert p.done
    """

    def __init__(self, max_events: int = 200_000_000):
        self.now: float = 0.0
        self.max_events = max_events
        self.events_processed = 0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)  # PIDs look like real PIDs
        self._procs: list[SimProcess] = []

    # -- scheduling --------------------------------------------------------

    def schedule(self, dt: float, fn: Callable[[], None]) -> None:
        """Run callback ``fn`` at ``now + dt``."""
        if dt < 0:
            raise SimError(f"cannot schedule in the past (dt={dt})")
        heapq.heappush(self._heap, (self.now + dt, next(self._seq), fn))

    def spawn(
        self,
        gen: Generator,
        name: Optional[str] = None,
        pid: Optional[int] = None,
        socket: int = 0,
        core: int = 0,
    ) -> SimProcess:
        """Register a generator as a process; it starts at the current time.

        ``pid``/``socket``/``core`` let the MPI layer spawn work *as* an
        existing logical rank (same address space, same placement).
        """
        if pid is None:
            pid = next(self._pid_counter)
        proc = SimProcess(self, gen, name or f"proc{pid}", pid)
        proc.socket = socket
        proc.core = core
        self._procs.append(proc)
        self.schedule(0.0, lambda: self._resume(proc, None))
        return proc

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; returns the final clock value.

        Raises :class:`DeadlockError` if processes remain blocked with no
        pending events, which in this codebase always indicates a protocol
        bug (e.g. a collective waiting for a notification nobody sends).
        """
        while self._heap:
            t, _, fn = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            if self.events_processed > self.max_events:
                raise SimError(
                    f"exceeded max_events={self.max_events}; runaway simulation?"
                )
            fn()
        blocked = [p for p in self._procs if p.state == _BLOCKED]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"simulation deadlock at t={self.now:.3f}us: "
                f"{len(blocked)} blocked process(es): {names}"
            )
        return self.now

    def run_all(self, procs: Iterable[SimProcess]) -> float:
        """Run to completion and re-raise the first process failure, if any.

        A process dying mid-protocol usually strands its peers, so a
        resulting deadlock is reported as the *root-cause* failure (with
        the deadlock chained as context) rather than as DeadlockError.
        """
        procs = list(procs)
        try:
            self.run()
        except DeadlockError as dead:
            for p in procs:
                if p.state == _FAILED:
                    raise p.error from dead  # type: ignore[misc]
            raise
        for p in procs:
            if p.state == _FAILED:
                raise p.error  # type: ignore[misc]
            if not p.done:
                raise SimError(f"process {p.name} never completed")
        return self.now

    # -- process stepping ---------------------------------------------------

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.done:  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # process raised: record and propagate
            self._finish(proc, None, exc)
            return
        self._dispatch(proc, cmd)

    def _throw(self, proc: SimProcess, exc: BaseException) -> None:
        """Resume a process by raising ``exc`` inside it (used by channels)."""
        if proc.done:  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc.gen.throw(exc)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:
            self._finish(proc, None, err)
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        try:
            self._dispatch_inner(proc, cmd)
        except BaseException as exc:
            # protocol errors (double release, bad iovec, ...) fail the
            # process that issued the command, like a raise at the yield
            self._finish(proc, None, exc)

    def _dispatch_inner(self, proc: SimProcess, cmd: Any) -> None:
        if type(cmd) is Delay:
            proc.state = _BLOCKED
            self.schedule(cmd.dt, lambda: self._resume(proc, None))
        elif type(cmd) is Acquire:
            proc.state = _BLOCKED
            cmd.lock._acquire(proc)
        elif type(cmd) is Release:
            cmd.lock._release(proc)
            # Releasing never blocks; continue the releaser via the heap so
            # the granted waiter (scheduled first) runs at the same timestamp.
            proc.state = _BLOCKED
            self.schedule(0.0, lambda: self._resume(proc, None))
        elif type(cmd) is Join:
            target = cmd.proc
            if target.done:
                if target.state == _FAILED:
                    self.schedule(0.0, lambda: self._throw(proc, target.error))
                else:
                    self.schedule(0.0, lambda: self._resume(proc, target.result))
                proc.state = _BLOCKED
            else:
                proc.state = _BLOCKED
                target._joiners.append(proc)
        elif isinstance(cmd, Command):
            # Channel commands (Send/Recv) know how to dispatch themselves to
            # avoid a circular import; see repro.sim.channels.
            proc.state = _BLOCKED
            cmd._dispatch(self, proc)  # type: ignore[attr-defined]
        else:
            self._finish(
                proc,
                None,
                SimError(f"process {proc.name} yielded non-command {cmd!r}"),
            )

    def _finish(
        self, proc: SimProcess, result: Any, error: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.error = error
        proc.state = _FAILED if error is not None else _DONE
        proc.finish_time = self.now
        joiners, proc._joiners = proc._joiners, []
        for j in joiners:
            if error is not None:
                self.schedule(0.0, lambda j=j: self._throw(j, error))
            else:
                self.schedule(0.0, lambda j=j: self._resume(j, result))
