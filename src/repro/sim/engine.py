"""Event loop and process model for the discrete-event simulator.

The design follows the classic process-interaction style (SimPy-like) but is
purpose-built and dependency-free:

* Time is a ``float`` in **microseconds** — the unit used throughout the
  paper's tables and our model parameters.
* A :class:`SimProcess` wraps a generator.  Each ``yield`` hands a *command*
  to the engine; the engine schedules the resumption.  ``return value`` from
  the generator becomes the process result (retrievable via ``Join``).
* Every resumption is still an *event* — there is no re-entrancy and no
  unbounded recursion when locks are released — but zero-delay resumptions
  (spawns, lock grants, release continuations, join wakeups, message
  notifications) ride a FIFO **ready deque** instead of the time heap, and
  events are closure-free ``(time, seq, kind, a, b)`` dispatch records
  rather than lambda allocations.

Ordering is *identical* to a pure-heap engine: a global monotonic sequence
number is allocated at the moment an event is scheduled (exactly where the
old heap push happened), and the run loop merges the deque and the heap by
``(time, seq)``.  Since every ready entry carries the current timestamp and
sequence numbers are allocated in order, the deque is always seq-sorted and
the merge reproduces heap order bit-for-bit — the engine's event
interleaving (and therefore every simulated microsecond downstream, via
FIFO lock queues) is unchanged.  ``Simulator(use_ready_queue=False)`` routes
zero-delay records through the heap instead, which
``tests/test_engine_ordering.py`` uses to assert the equivalence on random
workloads.

The engine knows nothing about machines, kernels, or MPI — those layers are
implemented as generators that run *on* it.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Delay",
    "DelayChain",
    "HoldRelease",
    "Acquire",
    "Release",
    "Join",
    "PinConvoy",
    "FaultConvoy",
    "PhaseCommand",
    "RingStage",
    "TreeRound",
    "PairwiseExchange",
    "SimProcess",
    "Simulator",
]


class SimError(RuntimeError):
    """Base class for simulation protocol errors."""


class DeadlockError(SimError):
    """Raised when the event heap drains while processes are still blocked."""


# --------------------------------------------------------------------------
# Commands.  Plain slotted classes: created in hot loops.
# --------------------------------------------------------------------------


class Command:
    """Marker base class for values a process may yield to the engine."""

    __slots__ = ()


class Delay(Command):
    """Suspend the yielding process for ``dt`` microseconds of virtual time."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimError(f"negative delay {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.dt})"


class DelayChain(Command):
    """Two back-to-back delays in one engine round-trip.

    With ``d2 > 0`` this produces the *same* event stream as
    ``yield Delay(d1); yield Delay(d2)`` — same timestamps, same tie-breaker
    sequence numbers, same event count — minus one generator resumption:
    the intermediate event is a chain record, not a ``send``.  With
    ``d2 == 0`` the second hop is skipped entirely (the continuation runs
    inside the first event), making it equivalent to ``Delay(d1)`` alone.
    The kernel fast path uses this for the syscall-entry + access-check
    pair, which brackets no observable state.
    """

    __slots__ = ("d1", "d2")

    def __init__(self, d1: float, d2: float):
        if d1 < 0 or d2 < 0:
            raise SimError(f"negative delay in chain ({d1!r}, {d2!r})")
        self.d1 = d1
        self.d2 = d2

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DelayChain({self.d1}, {self.d2})"


class HoldRelease(Command):
    """Hold ``lock`` for ``dt`` more microseconds, release it, then resume
    after a further ``extra_dt``.

    Event-stream-identical to ``yield Delay(dt); yield Release(lock)``
    (followed by ``yield Delay(extra_dt)`` when ``extra_dt > 0``), but the
    delay-then-release hop is a dispatch record instead of a generator
    resumption: the release (and the FIFO grant to the next waiter) happens
    at exactly the same timestamp and sequence position as before.  The
    kernel uses this for the pin critical section so an uncontended batch
    costs two generator resumptions instead of four.
    """

    __slots__ = ("lock", "dt", "extra_dt")

    def __init__(self, lock, dt: float, extra_dt: float = 0.0):
        if dt < 0 or extra_dt < 0:
            raise SimError(f"negative delay in hold ({dt!r}, {extra_dt!r})")
        self.lock = lock
        self.dt = dt
        self.extra_dt = extra_dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HoldRelease({self.lock!r}, {self.dt}, {self.extra_dt})"


class Acquire(Command):
    """Block until the given :class:`~repro.sim.resources.Mutex` is granted."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Acquire({self.lock!r})"


class Release(Command):
    """Release a held mutex (the engine resumes the next waiter, FIFO)."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Release({self.lock!r})"


class PinConvoy(Command):
    """Run a whole ``Acquire -> HoldRelease`` pin loop as engine records.

    Yielded once per pin loop (by :meth:`repro.kernel.pagelock.MMLock.
    lock_and_pin` and the untraced CMA data path) instead of one
    ``Acquire`` + ``HoldRelease`` pair per batch.  ``batches`` is the
    precomputed plan — a sequence of ``(pages, extra_dt)`` with the batch
    size and the post-release continuation delay (the batch's pro-rata
    copy share; ``extra_dt`` must be non-negative) — and ``hold_fn(pages,
    proc)`` computes the critical-section length *at grant time*, against
    live mutex state, exactly where the unfused generator computed it.

    The event stream is bit-identical to the unfused loop — same
    timestamps, FIFO grant order, tie-breaker sequence numbers, and event
    counts — but every per-batch hop is a dispatch record instead of a
    generator resumption, and while the lock's contender set consists
    only of convoy members the engine fast-forwards whole epochs in a
    local loop (see :meth:`Simulator._convoy_burst`).  The command
    evaluates to ``npages``.  ``mm`` (optional) is a counter object whose
    ``pages_pinned`` attribute is bumped by ``pages`` at each batch's
    rejoin point, mirroring the unfused bookkeeping position.

    ``memo`` (optional) is a hold-time memo dict owned by the caller.
    Passing it asserts that ``hold_fn(pages, proc)`` is a *pure* function
    of ``(pages, lock.contention_profile(proc.socket))`` — true for the
    mm-lock bounce model, whose only inputs are the batch size and the
    per-socket contender split.  The engine then caches hold values
    under that key: in a steady convoy the contender profile repeats
    every round, so the Python-level ``hold_fn`` call collapses to a
    dict hit returning the exact float it would have computed.

    ``pure`` (derived) is True when every ``extra_dt`` is ``0.0`` — a
    *pure pin loop* (no interleaved copies).  For pure convoys nothing
    is ever in flight except the current holder's release, so the epoch
    fast-forward can run rounds as straight-line code with no heap at
    all (the closed form of the steady state).
    """

    __slots__ = ("lock", "hold_fn", "batches", "mm", "npages", "memo", "pure")

    def __init__(self, lock, hold_fn, batches, mm=None, npages: int = 0,
                 memo=None):
        if not batches:
            raise SimError("PinConvoy needs at least one batch")
        self.lock = lock
        self.hold_fn = hold_fn
        self.batches = batches
        self.mm = mm
        self.npages = npages
        self.memo = memo
        pure = True
        for _, extra in batches:
            if extra != 0.0:
                pure = False
                break
        self.pure = pure

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PinConvoy({self.lock!r}, {len(self.batches)} batches)"


class FaultConvoy(PinConvoy):
    """A pin convoy fused with a trailing pin-free delay (``tail_dt``).

    The mapped-window kernel's cold-copy fast path: per-page fault-ins
    contend on the owner's mm lock exactly like a :class:`PinConvoy`
    (``batches`` is one single-page batch per faulted page), and the
    steady-state copy that follows never touches the lock — it is a plain
    delay after the last rejoin.  Yielding ``FaultConvoy(..., tail_dt=t)``
    is event-stream-identical to ``yield PinConvoy(...)`` followed by
    ``yield Delay(t)`` — the resume record is allocated at the exact
    causal point the unfused ``Delay`` push happened, with the same
    timestamp arithmetic — minus one generator resumption.  The command
    evaluates to ``npages``.  ``tail_dt == 0.0`` degenerates to plain
    :class:`PinConvoy` behaviour (inline resume at the last rejoin).
    """

    __slots__ = ("tail_dt",)

    def __init__(self, lock, hold_fn, batches, mm=None, npages: int = 0,
                 memo=None, tail_dt: float = 0.0):
        super().__init__(lock, hold_fn, batches, mm=mm, npages=npages,
                         memo=memo)
        if tail_dt < 0:
            raise SimError(f"negative tail delay {tail_dt!r}")
        self.tail_dt = tail_dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultConvoy({self.lock!r}, {len(self.batches)} batches, "
            f"tail={self.tail_dt})"
        )


class PhaseCommand(Command):
    """A whole uncontended collective phase, fused into one dispatch.

    Emitters yield one of the shape subclasses — :class:`RingStage`,
    :class:`TreeRound`, :class:`PairwiseExchange` — carrying the phase's
    straight-line schedule as a list of *segments*, each the fused image
    of exactly one command the per-step path would have yielded:

    * ``PhaseCommand.chain(d1, d2, cb)`` — one :class:`DelayChain` (or, with
      ``d2 == 0``, one :class:`Delay`);
    * ``PhaseCommand.pin(lock, hold_fn, batches, ...)`` — one
      :class:`PinConvoy`.

    ``cb`` (optional, zero-argument) runs at the segment's completion —
    the exact causal point the unfused generator resumption would have run
    the same Python side effects (verify copies, kernel counters).  A
    ``cb`` must not schedule events or touch engine state; it is pure
    bookkeeping lifted out of the generator.

    The engine replays the segment list record-for-record: sequence
    numbers are allocated at the same causal points, the float additions
    (``now + d1``, ``now + hold``) happen in the same order on the same
    operands, and lock traffic goes through the same mutex transitions —
    so timestamps, FIFO grant order, lock statistics and event counts are
    bit-identical to the per-step path (the four-mode differential
    battery in ``tests/test_phases.py`` enforces this).  Only the
    generator stays parked until the last segment; the command then
    evaluates to ``value``.

    Phases are only *emitted* for untraced, fault-free schedules (see
    ``RankCtx.phase_fusible``): tracing wants a span per step and an armed
    fault plan can rewrite any step, so both force the per-step path.

    ``delay_only`` (derived) is True when every segment is a chain with
    ``d2 == 0`` — a pure delay run, the shape the opt-in vectorized batch
    executor (``REPRO_ENGINE_BATCH``) can drain with one cumulative sum.
    """

    __slots__ = ("segments", "value", "delay_only")

    def __init__(self, segments, value: Any = None):
        if not segments:
            raise SimError(f"{type(self).__name__} needs at least one segment")
        delay_only = True
        for seg in segments:
            tag = seg[0]
            if tag == "c":
                if seg[1] < 0 or seg[2] < 0:
                    raise SimError(f"negative delay in phase segment {seg!r}")
                if seg[2] != 0.0:
                    delay_only = False
            elif tag == "p":
                if not seg[3]:
                    raise SimError("phase pin segment needs at least one batch")
                delay_only = False
            else:
                raise SimError(f"unknown phase segment tag {tag!r}")
        self.segments = segments
        self.value = value
        self.delay_only = delay_only

    @staticmethod
    def chain(d1: float, d2: float = 0.0, cb=None) -> tuple:
        """Segment equal to ``yield DelayChain(d1, d2)`` (``Delay`` if d2==0)."""
        return ("c", d1, d2, cb)

    @staticmethod
    def pin(lock, hold_fn, batches, mm=None, npages: int = 0, memo=None,
            cb=None) -> tuple:
        """Segment equal to ``yield PinConvoy(lock, hold_fn, batches, ...)``."""
        pure = True
        for _, extra in batches:
            if extra != 0.0:
                pure = False
                break
        return ("p", lock, hold_fn, batches, mm, npages, memo, pure, cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({len(self.segments)} segments)"


class RingStage(PhaseCommand):
    """Fused ring/pipeline stage: one rank's p-1 neighbour transfers."""

    __slots__ = ()


class TreeRound(PhaseCommand):
    """Fused tree round: one rank's fan-out (or fan-in) transfer burst."""

    __slots__ = ()


class PairwiseExchange(PhaseCommand):
    """Fused pairwise-exchange schedule: one rank's p-1 peer exchanges."""

    __slots__ = ()


class Join(Command):
    """Block until another process finishes; evaluates to its return value."""

    __slots__ = ("proc",)

    def __init__(self, proc: "SimProcess"):
        self.proc = proc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Join({self.proc!r})"


# --------------------------------------------------------------------------
# Processes
# --------------------------------------------------------------------------

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"

# Dispatch-record kinds.  An event is (time, seq, kind, a, b) on the heap or
# (seq, kind, a, b) on the ready deque; ``a``/``b`` are kind-specific:
_K_RESUME = 0   # a=proc,    b=value      -> gen.send(value)
_K_THROW = 1    # a=proc,    b=exc        -> gen.throw(exc)
_K_CALL = 2     # a=fn,      b=None       -> fn()           (public schedule())
_K_DELIVER = 3  # a=mailbox, b=msg        -> mailbox.deliver(msg)
_K_CHAIN = 4    # a=proc,    b=d2         -> resume now (d2==0) or in d2
_K_RELEASE = 5  # a=proc,    b=(lock, d2) -> release lock, then chain d2
# Convoy records (a=_Convoy, b=None): the four hops of one pin batch.  They
# shadow the unfused stream record-for-record — grant (_K_RESUME there),
# release (_K_RELEASE), chain (_K_CHAIN), rejoin (_K_RESUME) — so counts
# and sequence-number allocation points are identical; only the generator
# stays parked until the last batch.
_K_CGRANT = 6    # lock granted: compute hold_time, schedule the release
_K_CRELEASE = 7  # hold elapsed: release the lock, chain to the rejoin
_K_CCHAIN = 8    # post-release: rejoin now (extra==0) or after extra
_K_CREJOIN = 9   # batch done: count pages, next acquire or resume the proc
# Phase records (a=_Phase): one chain segment of a fused PhaseCommand.  They
# shadow the unfused stream exactly like the convoy records do — _K_PCHAIN
# is the fused image of _K_CHAIN, _K_PSTEP of the trailing _K_RESUME — so
# counts and sequence-number allocation points are identical.
_K_PCHAIN = 10  # a=phase, b=d2 -> advance now (d2==0) or step in d2
_K_PSTEP = 11   # a=phase, b=None -> segment done: run cb, schedule the next


class FoldBump:
    """Counter-bump completion callback the batch drain may fold.

    Phase completion callbacks are opaque to the drain, which must run
    each one at its exact merge position (interleaving the bulk
    sequence draws, in case one raises or observes mid-drain state).
    Kernels use this class for the common untraced/unverified callback
    — a bare syscall-counter bump — to declare it pure arithmetic:
    calling it ``n`` times equals one ``bump(n)``, it cannot raise, and
    it reads nothing, so the drain may defer and batch every call after
    the window commits wholesale.
    """

    __slots__ = ("obj", "attr")

    drain_fold = True

    def __init__(self, obj, attr: str) -> None:
        self.obj = obj
        self.attr = attr

    def __call__(self) -> None:
        obj = self.obj
        setattr(obj, self.attr, getattr(obj, self.attr) + 1)

    def bump(self, n: int) -> None:
        obj = self.obj
        setattr(obj, self.attr, getattr(obj, self.attr) + n)


class _Convoy:
    """Engine-side state of one process's in-flight :class:`PinConvoy`.

    ``phase`` is non-None when the convoy is a pin *segment* of an
    in-flight :class:`PhaseCommand`: the mutex grant routing is identical
    (grants look at ``proc.convoy``), but the last rejoin advances the
    phase instead of resuming the generator.  Phase convoys never carry a
    tail (the cold mapped-window path is not fused).
    """

    __slots__ = ("proc", "lock", "hold_fn", "batches", "idx", "mm", "npages",
                 "memo", "pure", "tail", "phase")

    def __init__(self, proc: "SimProcess", cmd: PinConvoy):
        self.proc = proc
        self.lock = cmd.lock
        self.hold_fn = cmd.hold_fn
        self.batches = cmd.batches
        self.idx = 0
        self.mm = cmd.mm
        self.npages = cmd.npages
        self.memo = cmd.memo
        self.pure = cmd.pure
        self.tail = getattr(cmd, "tail_dt", 0.0)
        self.phase = None

    @classmethod
    def _for_phase(cls, proc: "SimProcess", seg: tuple, phase: "_Phase"):
        """Build the convoy for a phase pin segment (see PhaseCommand.pin)."""
        c = cls.__new__(cls)
        c.proc = proc
        c.lock = seg[1]
        c.hold_fn = seg[2]
        c.batches = seg[3]
        c.idx = 0
        c.mm = seg[4]
        c.npages = seg[5]
        c.memo = seg[6]
        c.pure = seg[7]
        c.tail = 0.0
        c.phase = phase
        return c


class _Phase:
    """Engine-side state of one process's in-flight :class:`PhaseCommand`."""

    __slots__ = ("proc", "segments", "idx", "value", "delay_only")

    def __init__(self, proc: "SimProcess", cmd: PhaseCommand):
        self.proc = proc
        self.segments = cmd.segments
        self.idx = 0
        self.value = cmd.value
        self.delay_only = cmd.delay_only


def _drain_seq_before(ea, eb) -> bool:
    """Scalar draw order of two drain records parked at the same time.

    A parked successor's seq is drawn when its predecessor is processed,
    so the heap tie between two same-time parked records resolves by the
    processing order of the predecessors: the earlier-timestamped one
    first, and at equal timestamps the question recurses to *their*
    predecessors — i.e. the reversed per-phase drained-time histories
    compare lexicographically.  When one history is a suffix of the
    other, the shorter phase's chain bottomed out at its pre-drain entry
    record, whose seq predates every drain draw; two entries compare by
    their real heap seqs.
    """
    pa, na = ea[5], ea[6]
    pb, nb = eb[5], eb[6]
    m = na if na < nb else nb
    if m:
        ca = pa["times"][na - m:na]
        cb = pb["times"][nb - m:nb]
        neq = ca != cb
        if neq.any():
            k = int(m - 1 - neq[::-1].argmax())
            return bool(ca[k] < cb[k])
    if na != nb:
        return na < nb
    return pa["rec"][1] < pb["rec"][1]


class _HistKey:
    """Sort key adapter over :func:`_drain_seq_before`."""

    __slots__ = ("e",)

    def __init__(self, e):
        self.e = e

    def __lt__(self, other) -> bool:
        return _drain_seq_before(self.e, other.e)


class SimProcess:
    """A schedulable coroutine plus the placement metadata layers hang off it.

    ``socket``/``core`` are assigned by the machine layer when the process is
    pinned; the mm-lock bounce model reads them straight off contenders, so
    they live here rather than in a side table.
    """

    __slots__ = (
        "sim",
        "gen",
        "name",
        "pid",
        "socket",
        "core",
        "state",
        "result",
        "error",
        "finish_time",
        "convoy",
        "_joiners",
        "_send",
        "_gthrow",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str, pid: int):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.pid = pid
        self.socket: int = 0
        self.core: int = 0
        self.state = _READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finish_time: Optional[float] = None
        #: in-flight PinConvoy state; mutexes route grants on it
        self.convoy: Optional[_Convoy] = None
        self._joiners: list[SimProcess] = []
        # Bound once: every resumption would otherwise pay two attribute
        # lookups (proc.gen.send) in the hottest line of the simulator.
        self._send = gen.send
        self._gthrow = gen.throw

    @property
    def done(self) -> bool:
        return self.state in (_DONE, _FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimProcess {self.name} pid={self.pid} {self.state}>"


class Simulator:
    """Single-clock event engine.

    Typical use::

        sim = Simulator()
        p = sim.spawn(worker(), name="w0")
        sim.run()
        assert p.done

    ``use_ready_queue=False`` disables the zero-delay fast path (every
    record goes through the heap); results are identical, only slower —
    the differential stress test relies on this.  ``use_pin_convoy=False``
    tells the kernel layers to keep their per-batch ``Acquire``/
    ``HoldRelease`` loops instead of yielding :class:`PinConvoy`, and
    ``use_convoy_burst=False`` keeps PinConvoy in record-at-a-time mode
    (no epoch fast-forward); all four combinations are bit-identical —
    the convoy differential battery relies on this.

    The phase layer has the same three-way split: ``use_phase_fusion=False``
    tells the schedule emitters to keep their per-step loops instead of
    yielding :class:`RingStage`/:class:`TreeRound`/:class:`PairwiseExchange`,
    ``use_phase_burst=False`` keeps phase records in record-at-a-time mode
    (no local fast-forward loop), and ``use_batch_executor`` opts into the
    numpy-vectorized drain of delay-only phase runs and same-timestamp
    step cohorts (default: the ``REPRO_ENGINE_BATCH`` environment
    variable; silently off when numpy is unavailable).  All combinations
    are bit-identical — the phase differential battery relies on this.
    """

    def __init__(
        self,
        max_events: int = 200_000_000,
        use_ready_queue: bool = True,
        use_pin_convoy: bool = True,
        use_convoy_burst: bool = True,
        use_phase_fusion: bool = True,
        use_phase_burst: bool = True,
        use_batch_executor: Optional[bool] = None,
    ):
        self.now: float = 0.0
        self.max_events = max_events
        self.events_processed = 0
        self._heap: list[tuple] = []
        self._ready: deque[tuple] = deque()
        self._use_ready = use_ready_queue
        self.use_pin_convoy = use_pin_convoy
        self._use_burst = use_convoy_burst
        self.use_phase_fusion = use_phase_fusion
        self._use_pburst = use_phase_burst
        if use_batch_executor is None:
            use_batch_executor = os.environ.get(
                "REPRO_ENGINE_BATCH", ""
            ) not in ("", "0")
        self._np = None
        if use_batch_executor:
            try:
                import numpy
            except ImportError:  # batch executor is opt-in sugar, not a dep
                pass
            else:
                self._np = numpy
        #: per-(entry shape, segment identities) reusable drain plans: warm
        #: collective rounds re-enter :meth:`_phase_drain` with the exact
        #: same (kernel-cached, hence id-stable) segment objects, so the
        #: expensive stream walk amortizes to one build per shape.  Values
        #: hold strong references to every object their keys name by id,
        #: so a key match implies identity (ids cannot be recycled while
        #: the plan pins them).
        self._drain_plans: dict = {}
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)  # PIDs look like real PIDs
        self._procs: list[SimProcess] = []

    def reset(self) -> None:
        """Return the engine to its freshly-constructed state.

        Restarting ``_seq`` at zero is the load-bearing part: sequence
        numbers are the same-timestamp tie-breaker, so a warm engine must
        hand out the exact sequence stream a fresh engine would or event
        ordering (and every simulated microsecond downstream) diverges.
        """
        self.now = 0.0
        self.events_processed = 0
        self._heap.clear()
        self._ready.clear()
        self._seq = itertools.count()
        self._pid_counter = itertools.count(1000)
        self._procs.clear()

    # -- scheduling --------------------------------------------------------

    def _push(self, dt: float, kind: int, a: Any, b: Any) -> None:
        """Schedule one dispatch record at ``now + dt``.

        The sequence number is allocated *here*, at the exact program point
        the old engine pushed its heap entry, so same-timestamp tie-breaking
        is unchanged.  Zero-delay records go to the FIFO ready deque, whose
        entries all carry the current timestamp; the run loop merges deque
        and heap by (time, seq).
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), kind, a, b))
        else:
            heapq.heappush(self._heap, (self.now + dt, next(self._seq), kind, a, b))

    def _schedule_resume(self, dt: float, proc: "SimProcess", value: Any) -> None:
        """Resume ``proc`` with ``value`` after ``dt`` (resources/channels).

        Open-codes :meth:`_push`: this is the lock-grant / message-wakeup
        path, hot enough that the extra method call shows up in profiles.
        """
        if dt == 0.0 and self._use_ready:
            self._ready.append((next(self._seq), _K_RESUME, proc, value))
        else:
            heapq.heappush(
                self._heap, (self.now + dt, next(self._seq), _K_RESUME, proc, value)
            )

    def _schedule_throw(self, dt: float, proc: "SimProcess", exc: BaseException) -> None:
        """Resume ``proc`` by raising ``exc`` inside it after ``dt``."""
        self._push(dt, _K_THROW, proc, exc)

    def _schedule_deliver(self, dt: float, mailbox, msg) -> None:
        """Deliver ``msg`` to ``mailbox`` after ``dt`` (channel transit)."""
        self._push(dt, _K_DELIVER, mailbox, msg)

    def schedule(self, dt: float, fn: Callable[[], None]) -> None:
        """Run callback ``fn`` at ``now + dt``."""
        if dt < 0:
            raise SimError(f"cannot schedule in the past (dt={dt})")
        self._push(dt, _K_CALL, fn, None)

    def spawn(
        self,
        gen: Generator,
        name: Optional[str] = None,
        pid: Optional[int] = None,
        socket: int = 0,
        core: int = 0,
    ) -> SimProcess:
        """Register a generator as a process; it starts at the current time.

        ``pid``/``socket``/``core`` let the MPI layer spawn work *as* an
        existing logical rank (same address space, same placement).
        """
        if pid is None:
            pid = next(self._pid_counter)
        proc = SimProcess(self, gen, name or f"proc{pid}", pid)
        proc.socket = socket
        proc.core = core
        self._procs.append(proc)
        self._push(0.0, _K_RESUME, proc, None)
        return proc

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queues; returns the final clock value.

        Events scheduled at exactly ``until`` still run (including any
        zero-delay cascade they trigger); the clock parks at ``until`` when
        the next pending event lies beyond it.  Raises
        :class:`DeadlockError` if processes remain blocked with no pending
        events, which in this codebase always indicates a protocol bug
        (e.g. a collective waiting for a notification nobody sends).
        """
        heap = self._heap
        ready = self._ready
        ready_append = ready.append
        ready_pop = ready.popleft
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = self._seq.__next__
        use_ready = self._use_ready
        use_burst = self._use_burst
        use_pburst = self._use_pburst
        max_events = self.max_events
        throw = self._throw
        push = self._push
        finish = self._finish
        dispatch = self._dispatch
        n = self.events_processed
        now = self.now
        if until is not None and now > until and (heap or ready):
            # Clock already past the horizon (a previous run() parked it
            # later): nothing to do, pending work stays pending.
            self.now = until
            return until
        try:
            while heap or ready:
                if ready and (
                    not heap or heap[0][0] > now or heap[0][1] > ready[0][0]
                ):
                    _, kind, a, b = ready_pop()
                else:
                    entry = heap[0]
                    t = entry[0]
                    if until is not None and t > until:
                        self.now = until
                        return until
                    heappop(heap)
                    self.now = now = t
                    kind = entry[2]
                    a = entry[3]
                    b = entry[4]
                n += 1
                if n > max_events:
                    raise SimError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                # Kind dispatch.  The resume path (and the commands a resumed
                # process most often yields) is open-coded below instead of
                # calling _resume/_dispatch/_push: three method calls per
                # event is the difference between ~1.0M and ~1.5M events/sec.
                # The scheduling effects are line-for-line those of
                # _dispatch — keep both in sync.
                if kind == _K_RESUME:
                    proc = a
                    value = b
                elif kind == _K_CHAIN:
                    # Continuation of a fused record: with no second delay
                    # the process resumes inside this very event (exactly
                    # where the unfused engine ran its send); otherwise the
                    # next hop is scheduled just like a yielded Delay.
                    if b == 0.0:
                        proc = a
                        value = None
                    else:
                        push(b, _K_RESUME, a, None)
                        continue
                elif kind == _K_RELEASE:
                    lock, extra = b
                    try:
                        lock._release(a)
                    except BaseException as exc:
                        finish(a, None, exc)
                    else:
                        push(0.0, _K_CHAIN, a, extra)
                    continue
                elif kind == _K_CRELEASE:
                    conv = a
                    lock = conv.lock
                    if (
                        use_burst
                        and not ready
                        and (lock._convoy_gen == lock.generation
                             or lock._convoy_closed())
                    ):
                        # Closed epoch, no pending same-time work: fast-
                        # forward the convoy until something external is
                        # due (or a member finishes and must be resumed).
                        delta, proc, value = self._convoy_burst(
                            kind, conv, until, n
                        )
                        n += delta
                        now = self.now
                        if proc is None:
                            continue
                        # fall through: resume the finished member
                    else:
                        try:
                            lock._release(conv.proc)
                        except BaseException as exc:
                            conv.proc.convoy = None
                            finish(conv.proc, None, exc)
                            continue
                        if use_ready:
                            ready_append((next_seq(), _K_CCHAIN, conv, None))
                        else:
                            heappush(
                                heap, (now, next_seq(), _K_CCHAIN, conv, None)
                            )
                        continue
                elif kind == _K_CCHAIN or kind == _K_CREJOIN:
                    conv = a
                    if kind == _K_CREJOIN and (
                        use_burst
                        and not ready
                        and (conv.lock._convoy_gen == conv.lock.generation
                             or conv.lock._convoy_closed())
                    ):
                        delta, proc, value = self._convoy_burst(
                            kind, conv, until, n
                        )
                        n += delta
                        now = self.now
                        if proc is None:
                            continue
                        # fall through: resume the finished member
                    else:
                        if kind == _K_CCHAIN:
                            extra = conv.batches[conv.idx][1]
                            if extra != 0.0:
                                heappush(
                                    heap,
                                    (now + extra, next_seq(),
                                     _K_CREJOIN, conv, None),
                                )
                                continue
                            # extra == 0: the rejoin runs inside this very
                            # event, exactly where the unfused engine ran
                            # its send.
                        mm = conv.mm
                        if mm is not None:
                            mm.pages_pinned += conv.batches[conv.idx][0]
                        conv.idx += 1
                        if conv.idx < len(conv.batches):
                            try:
                                conv.lock._acquire(conv.proc)
                            except BaseException as exc:
                                conv.proc.convoy = None
                                finish(conv.proc, None, exc)
                            continue
                        proc = conv.proc
                        proc.convoy = None
                        if conv.tail != 0.0:
                            # FaultConvoy: the pin-free copy tail replaces
                            # the unfused ``yield Delay(tail)`` — same seq
                            # allocation point, same timestamp sum.
                            heappush(
                                heap,
                                (now + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            continue
                        if conv.phase is not None:
                            # Pin segment of a fused phase: advance the
                            # phase at the exact point the unfused path
                            # resumed the generator.
                            self._phase_advance(conv.phase)
                            continue
                        value = conv.npages
                        # fall through: resume with the pin-loop result
                elif kind == _K_CGRANT:
                    conv = a
                    hmemo = conv.memo
                    hold = None
                    if hmemo is not None:
                        # hold_fn declared pure in (pages, contention
                        # profile): a hit returns the exact float the
                        # call would have computed.
                        lk = conv.lock
                        hsame = lk._socket_counts.get(conv.proc.socket, 0)
                        hkey = (
                            conv.batches[conv.idx][0],
                            hsame,
                            (1 if lk.holder is not None else 0)
                            + len(lk._waiters) - hsame,
                        )
                        hold = hmemo.get(hkey)
                    if hold is None:
                        try:
                            hold = conv.hold_fn(
                                conv.batches[conv.idx][0], conv.proc
                            )
                            if hold < 0:
                                raise SimError(
                                    f"negative delay in hold ({hold!r})"
                                )
                        except BaseException as exc:
                            conv.proc.convoy = None
                            finish(conv.proc, None, exc)
                            continue
                        if hmemo is not None:
                            hmemo[hkey] = hold
                    if hold == 0.0 and use_ready:
                        ready_append((next_seq(), _K_CRELEASE, conv, None))
                    else:
                        heappush(
                            heap,
                            (now + hold, next_seq(), _K_CRELEASE, conv, None),
                        )
                    continue
                elif kind == _K_PCHAIN or kind == _K_PSTEP:
                    if kind == _K_PCHAIN and b != 0.0:
                        # Second hop of a fused chain segment: scheduled
                        # exactly like the unfused _K_CHAIN's second delay.
                        push(b, _K_PSTEP, a, None)
                        continue
                    if use_pburst and not ready:
                        # No pending same-time work: fast-forward phase
                        # step records in a local loop until something
                        # external is due.
                        delta = self._phase_burst(a, until, n)
                        n += delta
                        now = self.now
                        continue
                    self._phase_advance(a)
                    continue
                elif kind == _K_CALL:
                    a()
                    continue
                elif kind == _K_DELIVER:
                    a.deliver(b)
                    continue
                else:  # _K_THROW
                    throw(a, b)
                    continue
                # -- inline _resume(proc, value) --
                state = proc.state
                if state is _DONE or state is _FAILED:  # pragma: no cover
                    continue
                proc.state = _READY
                try:
                    cmd = proc._send(value)
                except StopIteration as stop:
                    finish(proc, stop.value, None)
                    continue
                except BaseException as exc:
                    finish(proc, None, exc)
                    continue
                # -- inline _dispatch(proc, cmd) for the hot commands --
                tc = cmd.__class__
                try:
                    if tc is Delay:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RESUME, proc, None)
                            )
                    elif tc is Acquire:
                        proc.state = _BLOCKED
                        cmd.lock._acquire(proc)
                    elif tc is HoldRelease:
                        proc.state = _BLOCKED
                        dt = cmd.dt
                        rec = (cmd.lock, cmd.extra_dt)
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_RELEASE, proc, rec))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_RELEASE, proc, rec)
                            )
                    elif tc is Release:
                        cmd.lock._release(proc)
                        proc.state = _BLOCKED
                        if use_ready:
                            ready_append((next_seq(), _K_RESUME, proc, None))
                        else:
                            heappush(heap, (now, next_seq(), _K_RESUME, proc, None))
                    elif tc is DelayChain:
                        proc.state = _BLOCKED
                        dt = cmd.d1
                        if dt == 0.0 and use_ready:
                            ready_append((next_seq(), _K_CHAIN, proc, cmd.d2))
                        else:
                            heappush(
                                heap, (now + dt, next_seq(), _K_CHAIN, proc, cmd.d2)
                            )
                    elif tc is PinConvoy or tc is FaultConvoy:
                        proc.state = _BLOCKED
                        proc.convoy = _Convoy(proc, cmd)
                        cmd.lock._acquire(proc)
                    else:
                        dispatch(proc, cmd)
                except BaseException as exc:
                    finish(proc, None, exc)
        finally:
            self.events_processed = n
        blocked = [p for p in self._procs if p.state == _BLOCKED]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"simulation deadlock at t={self.now:.3f}us: "
                f"{len(blocked)} blocked process(es): {names}"
            )
        return self.now

    def run_all(self, procs: Iterable[SimProcess]) -> float:
        """Run to completion and re-raise the first process failure, if any.

        A process dying mid-protocol usually strands its peers, so a
        resulting deadlock is reported as the *root-cause* failure (with
        the deadlock chained as context) rather than as DeadlockError.
        """
        procs = list(procs)
        try:
            self.run()
        except DeadlockError as dead:
            for p in procs:
                if p.state == _FAILED:
                    raise p.error from dead  # type: ignore[misc]
            raise
        for p in procs:
            if p.state == _FAILED:
                raise p.error  # type: ignore[misc]
            if not p.done:
                raise SimError(f"process {p.name} never completed")
        return self.now

    # -- convoy fast-forward -------------------------------------------------

    def _convoy_burst(self, kind: int, conv: _Convoy, until, n: int):
        """Fast-forward a closed convoy epoch without the run-loop machinery.

        Precondition (checked by the caller): the ready deque is empty and
        every contender of ``conv.lock`` is a convoy member of that lock,
        so until the next *real* heap record is due, the only runnable
        events are this record and the convoy records it causally
        produces.  Those are processed here in (time, seq) order: sequence
        numbers still come off the global counter at the same causal
        points, hold times are still computed against live mutex state at
        grant time, the clock still advances per event, and the float
        additions (``now + hold``, ``now + extra``) happen in the same
        order on the same values — so timestamps, lock statistics, FIFO
        grant order and event counts are bit-identical to record-at-a-time
        execution.  The loop just never touches the big heap or the kind
        dispatch, and nothing else can run meanwhile: no real record is
        due, and convoy processing schedules nothing external.

        The loop merges two sources in (time, seq) order: its local heap
        of records it created, and — because earlier bursts/record-mode
        stretches park convoy records in the real heap — same-epoch
        convoy records sitting at the top of the real heap, which it
        consumes directly.  Everything pre-burst carries a smaller
        sequence number than anything burst-allocated, so at time ties
        the real record correctly runs first, exactly as the run loop's
        merge rule would order it.

        Stops — materialising pending convoy records into the real heap
        verbatim (they already have real-record format and causally
        ordered sequence numbers) — when the real heap's next event is
        *not* a record of this convoy and is due at or before the next
        convoy record, when ``until`` would be crossed, or when a member
        finishes its last batch.  Returns ``(extra_events, proc, value)``;
        ``proc`` is non-None in the finished-member case and must be
        resumed with ``value`` by the caller.
        """
        heap = self._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        next_seq = self._seq.__next__
        max_events = self.max_events
        lock = conv.lock
        now = self.now
        cnt = 0
        vheap: list[tuple] = []

        while True:
            if kind == _K_CRELEASE:
                nxt = conv.lock._release_core(conv.proc)
                if nxt is not None:
                    heappush(
                        vheap, (now, next_seq(), _K_CGRANT, nxt.convoy, None)
                    )
                heappush(vheap, (now, next_seq(), _K_CCHAIN, conv, None))
            elif kind == _K_CGRANT:
                proc = conv.proc
                pages = conv.batches[conv.idx][0]
                hmemo = conv.memo
                hold = None
                if hmemo is not None:
                    hsame = lock._socket_counts.get(proc.socket, 0)
                    hkey = (
                        pages,
                        hsame,
                        (1 if lock.holder is not None else 0)
                        + len(lock._waiters) - hsame,
                    )
                    hold = hmemo.get(hkey)
                if hold is None:
                    try:
                        hold = conv.hold_fn(pages, proc)
                        if hold < 0:
                            raise SimError(f"negative delay in hold ({hold!r})")
                    except BaseException as exc:
                        proc.convoy = None
                        for rec in vheap:
                            heappush(heap, rec)
                        self._finish(proc, None, exc)
                        return cnt, None, None
                    if hmemo is not None:
                        hmemo[hkey] = hold
                if not conv.pure or vheap:
                    heappush(
                        vheap, (now + hold, next_seq(), _K_CRELEASE, conv, None)
                    )
                else:
                    cnt, done, fproc, fconv = self._convoy_steady(
                        now + hold, next_seq(), conv, vheap, until, cnt,
                        max_events - n,
                    )
                    now = self.now
                    if done:
                        if fproc is None:
                            return cnt, None, None
                        if fconv.phase is not None:
                            # Advance after steady's deferred lock stats
                            # are written back (its finally ran), so a
                            # same-lock re-pin sees live state.
                            self._phase_advance(fconv.phase)
                            return cnt, None, None
                        return cnt, fproc, fconv.npages
            else:  # _K_CCHAIN / _K_CREJOIN
                rejoin = True
                if kind == _K_CCHAIN:
                    extra = conv.batches[conv.idx][1]
                    if extra != 0.0:
                        heappush(
                            vheap,
                            (now + extra, next_seq(), _K_CREJOIN, conv, None),
                        )
                        rejoin = False
                if rejoin:
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx < len(conv.batches):
                        if conv.lock._acquire_core(conv.proc):
                            heappush(
                                vheap, (now, next_seq(), _K_CGRANT, conv, None)
                            )
                    else:
                        conv.proc.convoy = None
                        for rec in vheap:
                            heappush(heap, rec)
                        if conv.tail != 0.0:
                            # Tail resume seq comes after the parked
                            # records' (all allocated earlier), exactly as
                            # record-mode ordering has it.
                            heappush(
                                heap,
                                (now + conv.tail, next_seq(),
                                 _K_RESUME, conv.proc, conv.npages),
                            )
                            return cnt, None, None
                        if conv.phase is not None:
                            # Pin segment of a fused phase: the advance
                            # (cb + next-segment push) replaces the
                            # generator resumption record-for-record.
                            self._phase_advance(conv.phase)
                            return cnt, None, None
                        return cnt, conv.proc, conv.npages
                # Steady-state entry: a round just closed and the only
                # pending virtual record is a pure convoy's release —
                # from here the epoch runs as straight-line rounds.
                if len(vheap) == 1:
                    rec = vheap[0]
                    if rec[2] == _K_CRELEASE and rec[3].pure:
                        del vheap[0]
                        cnt, done, fproc, fconv = self._convoy_steady(
                            rec[0], rec[1], rec[3], vheap, until, cnt,
                            max_events - n,
                        )
                        now = self.now
                        if done:
                            if fproc is None:
                                return cnt, None, None
                            if fconv.phase is not None:
                                self._phase_advance(fconv.phase)
                                return cnt, None, None
                            return cnt, fproc, fconv.npages
            # -- advance to the next convoy record, or stop --
            head = vheap[0] if vheap else None
            from_real = False
            if heap:
                h = heap[0]
                if head is None or h[0] <= head[0]:
                    hk = h[2]
                    if _K_CGRANT <= hk <= _K_CREJOIN and h[3].lock is lock:
                        # Same-epoch record parked in the real heap (by an
                        # earlier burst or record-mode stretch): consume it
                        # here instead of stopping on it.
                        head = h
                        from_real = True
                    else:
                        for rec in vheap:
                            heappush(heap, rec)
                        return cnt, None, None
            if head is None:
                return cnt, None, None
            if until is not None and head[0] > until:
                for rec in vheap:
                    heappush(heap, rec)
                return cnt, None, None
            if from_real:
                heappop(heap)
            else:
                heappop(vheap)
            self.now = now = head[0]
            cnt += 1
            if n + cnt > max_events:
                raise SimError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            kind = head[2]
            conv = head[3]

    def _convoy_steady(self, t_rel, seq_r, rconv, vheap, until, cnt, limit):
        """Closed form of the steady state: pure pin convoy rounds.

        Called by :meth:`_convoy_burst` when the *only* pending virtual
        record is a pure convoy's release at ``(t_rel, seq_r)``.  In a
        pure convoy (every ``extra_dt == 0.0``) nothing is ever in
        flight except the current holder's release — the releaser's
        grant, chain and re-enqueue all happen at the release timestamp
        — so the event order is fully determined and each round is
        three records of straight-line code: one float add for the
        clock (``t_rel + hold``, the same operands the merge would
        add), the same mutex state transitions, and sequence numbers
        drawn off the global counter at the same causal points, with no
        heap traffic at all.  Timestamps, lock statistics, FIFO grant
        order and event counts stay bit-identical to the
        record-at-a-time merge.

        The mutex transitions are ``Mutex._release_core`` /
        ``_acquire_core`` inlined (kept in lockstep with those methods):
        the holder-identity guards drop out — the releaser *is* the
        holder and the re-enqueuer is not, by construction — and the
        scalar bookkeeping (generation, acquisitions, total_wait_us,
        max_contenders) runs on locals, written back on every exit.
        Deferring those writes is unobservable: no other process runs
        mid-steady-state, and the hold-model purity contract (see
        :class:`PinConvoy`) means ``hold_fn`` reads only the contender
        profile, which *is* maintained live (counts/holder/waiters).
        The float accumulation into ``total_wait_us`` happens in the
        same order on the same running value, so it is bit-exact.
        Within the loop every acquire/release is by a member of the
        closed epoch, so ``_convoy_gen`` tracks ``generation`` — both
        are written back as one value.

        Returns ``(cnt, done, proc, conv)``.  ``done=False`` means the
        loop bailed back to the general merge — the pending record(s)
        were re-parked in ``vheap`` — because a real-heap record is
        due, ``until`` would be crossed, the event budget (``limit``,
        relative to the burst's base count) nears, or a non-pure convoy
        was granted.  ``done=True`` means the burst must end: a member
        finished (``proc`` plus its ``conv``, handed back *after* the
        deferred lock statistics are written back so the caller can
        resume the generator — or advance the owning phase — against
        live lock state) or its hold_fn raised (``proc=None``, process
        already failed).
        """
        heap = self._heap
        heappush = heapq.heappush
        next_seq = self._seq.__next__
        lock = rconv.lock
        counts = lock._socket_counts
        waiters = lock._waiters
        gen = lock.generation
        acq = lock.acquisitions
        wait_us = lock.total_wait_us
        mc = lock.max_contenders
        try:
            while True:
                if (
                    (heap and heap[0][0] <= t_rel)
                    or (until is not None and t_rel > until)
                    or cnt + 3 > limit
                ):
                    heappush(vheap, (t_rel, seq_r, _K_CRELEASE, rconv, None))
                    return cnt, False, None, None
                conv = rconv
                proc = conv.proc
                self.now = t_rel
                cnt += 1  # release record
                # release: holder (proc) leaves the contender set
                psock = proc.socket
                left = counts[psock] - 1
                if left:
                    counts[psock] = left
                else:
                    del counts[psock]
                gen += 1
                if waiters:
                    nxt, since = waiters.popleft()
                    lock.holder = nxt
                    acq += 1
                    wait_us += t_rel - since
                    seq_g = next_seq()
                    seq_c = next_seq()
                    gconv = nxt.convoy
                    if not gconv.pure:
                        # Mixed epoch: hand grant + chain to the merge.
                        heappush(
                            vheap, (t_rel, seq_g, _K_CGRANT, gconv, None)
                        )
                        heappush(
                            vheap, (t_rel, seq_c, _K_CCHAIN, conv, None)
                        )
                        return cnt, False, None, None
                    cnt += 1  # grant record for nxt, at t_rel
                    grantee = nxt
                else:
                    # Lone member: release -> chain (inline rejoin) ->
                    # re-acquire of the free lock -> grant, all at t_rel.
                    nxt = None
                    next_seq()  # the chain record's seq
                    cnt += 1    # chain record
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx >= len(conv.batches):
                        proc.convoy = None
                        lock.holder = None
                        if conv.tail != 0.0:
                            heappush(
                                heap,
                                (t_rel + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            return cnt, True, None, None
                        return cnt, True, proc, conv
                    # re-acquire of the free lock: immediate grant (the
                    # holder write cancels out, proc -> None -> proc)
                    counts[psock] = left + 1
                    gen += 1
                    acq += 1
                    if mc < 1:
                        mc = 1
                    next_seq()  # the grant record's seq
                    cnt += 1    # grant record
                    grantee = proc
                    gconv = conv
                # Hold for the newly granted member, computed before the
                # releaser rejoins the queue — the same state the
                # record-mode grant handler sees.
                pages = gconv.batches[gconv.idx][0]
                hmemo = gconv.memo
                hold = None
                if hmemo is not None:
                    hsame = counts.get(grantee.socket, 0)
                    hkey = (pages, hsame, 1 + len(waiters) - hsame)
                    hold = hmemo.get(hkey)
                if hold is None:
                    try:
                        hold = gconv.hold_fn(pages, grantee)
                        if hold < 0:
                            raise SimError(f"negative delay in hold ({hold!r})")
                    except BaseException as exc:
                        grantee.convoy = None
                        if nxt is not None:
                            # the releaser's chain is still due
                            heappush(
                                heap, (t_rel, seq_c, _K_CCHAIN, conv, None)
                            )
                        self._finish(grantee, None, exc)
                        return cnt, True, None, None
                    if hmemo is not None:
                        hmemo[hkey] = hold
                seq_r = next_seq()  # the next release record's seq
                t_rel = t_rel + hold
                if nxt is not None:
                    # chain record: the releaser rejoins
                    cnt += 1
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx < len(conv.batches):
                        # re-enqueue behind nxt
                        counts[psock] = counts.get(psock, 0) + 1
                        gen += 1
                        waiters.append((proc, self.now))
                        nw = 1 + len(waiters)
                        if nw > mc:
                            mc = nw
                    else:
                        # Releaser finished mid-epoch: park the new
                        # holder's release and hand the member back for
                        # its generator resumption.
                        proc.convoy = None
                        heappush(
                            heap, (t_rel, seq_r, _K_CRELEASE, gconv, None)
                        )
                        if conv.tail != 0.0:
                            # self.now is still the release/chain timestamp
                            # (t_rel was advanced to the new holder's
                            # release time above); the tail runs from the
                            # rejoin, and its seq follows seq_r — the
                            # order record-mode allocates them in.
                            heappush(
                                heap,
                                (self.now + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                            return cnt, True, None, None
                        return cnt, True, proc, conv
                rconv = gconv
        finally:
            lock.generation = gen
            lock._convoy_gen = gen
            lock.acquisitions = acq
            lock.total_wait_us = wait_us
            lock.max_contenders = mc

    # -- phase fast-forward --------------------------------------------------

    def _phase_sched(self, phase: _Phase) -> None:
        """Schedule the first record of the phase's current segment.

        The sequence number is allocated exactly where the unfused path
        pushed the record of the corresponding ``DelayChain``/``PinConvoy``
        yield, so same-timestamp tie-breaking is unchanged.
        """
        seg = phase.segments[phase.idx]
        if seg[0] == "c":
            self._push(seg[1], _K_PCHAIN, phase, seg[2])
        else:
            proc = phase.proc
            proc.convoy = _Convoy._for_phase(proc, seg, phase)
            seg[1]._acquire(proc)

    def _phase_advance(self, phase: _Phase) -> None:
        """Complete the phase's current segment; start the next or resume.

        Runs the segment's ``cb`` at the exact causal point the unfused
        generator resumption ran the same side effects, then either
        schedules the next segment or resumes the generator with the
        phase's value.  A raising ``cb`` (or a failing pin acquire) fails
        the process, exactly like a raise at the unfused step.
        """
        seg = phase.segments[phase.idx]
        cb = seg[-1]
        if cb is not None:
            try:
                cb()
            except BaseException as exc:
                self._finish(phase.proc, None, exc)
                return
        phase.idx += 1
        if phase.idx < len(phase.segments):
            try:
                self._phase_sched(phase)
            except BaseException as exc:
                phase.proc.convoy = None
                self._finish(phase.proc, None, exc)
        else:
            self._resume(phase.proc, phase.value)

    def _phase_burst(self, phase: _Phase, until, n: int) -> int:
        """Fast-forward fused-phase records without the run-loop machinery.

        Entered from the run loop when a phase step record fired with an
        empty ready deque.  The advance for that record happens here;
        successor records — chain steps, and the convoy records of phase
        pin segments — go to a local heap, merged with the real heap in
        exact ``(time, seq)`` order.  Sequence numbers still come off the
        global counter at the same causal points, hold times are computed
        against live mutex state at grant time, and the float additions
        (``now + d``, ``now + hold``, ``now + extra``) happen in the same
        order on the same operands — so timestamps, FIFO grant order,
        lock statistics and event counts are bit-identical to
        record-at-a-time execution.

        Unlike :meth:`_convoy_burst` this loop is not scoped to one lock
        or one closed epoch: it drains the step records of *every*
        in-flight phase (and their pin convoys, via the general mutex
        transitions, so open epochs and outside contenders are handled),
        which is what keeps a whole multi-rank collective phase inside
        one local loop.  It hands control back — parking pending local
        records into the real heap verbatim — whenever the ready deque
        becomes non-empty (a generator resumed, a process finished, or a
        non-convoy waiter was granted), when the real heap's next record
        is not phase-owned and is due first, when ``until`` would be
        crossed, or when the event budget nears.

        With the batch executor armed, three vectorized drains run
        inside this loop, each guarded so it cannot change the record
        stream: a cumulative-sum drain of a delay-only phase's remaining
        segments (:meth:`_phase_batch`), a whole-system multi-phase
        fast-forward when the real heap is empty (:meth:`_phase_drain`),
        and a same-timestamp cohort sweep (:meth:`_phase_cohort`).

        Returns the number of extra events processed (the entry record
        was already counted by the caller).
        """
        heap = self._heap
        ready = self._ready
        heappush = heapq.heappush
        heappop = heapq.heappop
        next_seq = self._seq.__next__
        finish = self._finish
        max_events = self.max_events
        np_mod = self._np
        now = self.now
        cnt = 0
        drain_veto = False
        vheap: list[tuple] = []
        kind = _K_PSTEP  # the caller popped this phase's step record
        b = None
        conv = None
        while True:
            advance = False
            if kind == _K_PCHAIN or kind == _K_PSTEP:
                if kind == _K_PCHAIN and b != 0.0:
                    # second hop of a chain segment, like _K_CHAIN's d2
                    heappush(
                        vheap, (now + b, next_seq(), _K_PSTEP, phase, None)
                    )
                else:
                    advance = True
            elif kind == _K_CGRANT:
                proc = conv.proc
                lock = conv.lock
                pages = conv.batches[conv.idx][0]
                hmemo = conv.memo
                hold = None
                if hmemo is not None:
                    hsame = lock._socket_counts.get(proc.socket, 0)
                    hkey = (
                        pages,
                        hsame,
                        (1 if lock.holder is not None else 0)
                        + len(lock._waiters) - hsame,
                    )
                    hold = hmemo.get(hkey)
                if hold is None:
                    try:
                        hold = conv.hold_fn(pages, proc)
                        if hold < 0:
                            raise SimError(f"negative delay in hold ({hold!r})")
                    except BaseException as exc:
                        proc.convoy = None
                        for rec in vheap:
                            heappush(heap, rec)
                        finish(proc, None, exc)
                        return cnt
                    if hmemo is not None:
                        hmemo[hkey] = hold
                heappush(
                    vheap, (now + hold, next_seq(), _K_CRELEASE, conv, None)
                )
            elif kind == _K_CRELEASE:
                lock = conv.lock
                try:
                    nxt = lock._release_core(conv.proc)
                except BaseException as exc:
                    conv.proc.convoy = None
                    for rec in vheap:
                        heappush(heap, rec)
                    finish(conv.proc, None, exc)
                    return cnt
                if nxt is not None:
                    nc = nxt.convoy
                    if nc is not None and nc.lock is lock:
                        heappush(
                            vheap, (now, next_seq(), _K_CGRANT, nc, None)
                        )
                    else:
                        # A plain Acquire waiter was granted: its resume
                        # rides the normal scheduler, so the burst winds
                        # down right after this record.
                        self._schedule_resume(0.0, nxt, None)
                heappush(vheap, (now, next_seq(), _K_CCHAIN, conv, None))
                if ready:
                    for rec in vheap:
                        heappush(heap, rec)
                    return cnt
            else:  # _K_CCHAIN / _K_CREJOIN
                rejoin = True
                if kind == _K_CCHAIN:
                    extra = conv.batches[conv.idx][1]
                    if extra != 0.0:
                        heappush(
                            vheap,
                            (now + extra, next_seq(), _K_CREJOIN, conv, None),
                        )
                        rejoin = False
                if rejoin:
                    mm = conv.mm
                    if mm is not None:
                        mm.pages_pinned += conv.batches[conv.idx][0]
                    conv.idx += 1
                    if conv.idx < len(conv.batches):
                        try:
                            if conv.lock._acquire_core(conv.proc):
                                heappush(
                                    vheap,
                                    (now, next_seq(), _K_CGRANT, conv, None),
                                )
                        except BaseException as exc:
                            conv.proc.convoy = None
                            for rec in vheap:
                                heappush(heap, rec)
                            finish(conv.proc, None, exc)
                            return cnt
                    else:
                        proc = conv.proc
                        proc.convoy = None
                        if conv.tail != 0.0:
                            heappush(
                                heap,
                                (now + conv.tail, next_seq(),
                                 _K_RESUME, proc, conv.npages),
                            )
                        elif conv.phase is not None:
                            phase = conv.phase
                            advance = True
                        else:
                            self._resume(proc, conv.npages)
                            if ready:
                                for rec in vheap:
                                    heappush(heap, rec)
                                return cnt
            if advance:
                segs = phase.segments
                seg = segs[phase.idx]
                cb = seg[-1]
                if cb is not None:
                    try:
                        cb()
                    except BaseException as exc:
                        for rec in vheap:
                            heappush(heap, rec)
                        finish(phase.proc, None, exc)
                        return cnt
                idx = phase.idx + 1
                phase.idx = idx
                if idx < len(segs):
                    nseg = segs[idx]
                    if nseg[0] == "c":
                        drained = 0
                        if (
                            np_mod is not None
                            and phase.delay_only
                            and not vheap
                            and len(segs) - idx > 1
                        ):
                            drained = self._phase_batch(phase, until, n + cnt)
                        if drained:
                            cnt += drained
                            now = self.now
                            if ready:
                                return cnt  # vheap empty by the drain guard
                        else:
                            heappush(
                                vheap,
                                (now + nseg[1], next_seq(),
                                 _K_PCHAIN, phase, nseg[2]),
                            )
                    else:
                        proc = phase.proc
                        try:
                            pconv = _Convoy._for_phase(proc, nseg, phase)
                            proc.convoy = pconv
                            if nseg[1]._acquire_core(proc):
                                heappush(
                                    vheap,
                                    (now, next_seq(), _K_CGRANT, pconv, None),
                                )
                        except BaseException as exc:
                            proc.convoy = None
                            for rec in vheap:
                                heappush(heap, rec)
                            finish(proc, None, exc)
                            return cnt
                else:
                    self._resume(phase.proc, phase.value)
                    if ready:
                        for rec in vheap:
                            heappush(heap, rec)
                        return cnt
            # -- select the next record, or stop --
            if np_mod is not None:
                if vheap and not heap and not drain_veto:
                    drained = self._phase_drain(vheap, until, n + cnt)
                    if drained:
                        cnt += drained
                        now = self.now
                        if ready:
                            for rec in vheap:
                                heappush(heap, rec)
                            return cnt
                    else:
                        drain_veto = True
                while len(vheap) > 1 and (not heap or heap[0][0] > vheap[0][0]):
                    swept = self._phase_cohort(vheap, until, n + cnt)
                    if not swept:
                        break
                    cnt += swept
                    now = self.now
                    if ready:
                        for rec in vheap:
                            heappush(heap, rec)
                        return cnt
            head = vheap[0] if vheap else None
            take_real = False
            if heap:
                h = heap[0]
                if head is None or h[0] < head[0] or (
                    h[0] == head[0] and h[1] < head[1]
                ):
                    hk = h[2]
                    if hk == _K_PCHAIN or hk == _K_PSTEP or (
                        _K_CGRANT <= hk <= _K_CREJOIN
                        and h[3].phase is not None
                    ):
                        # Phase-owned record parked in the real heap by an
                        # earlier burst: consume it here.  The comparison
                        # is exact (time, seq) — records dispatched during
                        # this burst may carry later seqs than vheap ones.
                        head = h
                        take_real = True
                    else:
                        for rec in vheap:
                            heappush(heap, rec)
                        return cnt
            if head is None:
                return cnt
            if until is not None and head[0] > until:
                for rec in vheap:
                    heappush(heap, rec)
                return cnt
            if take_real:
                heappop(heap)
                drain_veto = False  # new material: the drain may apply now
            else:
                heappop(vheap)
            self.now = now = head[0]
            cnt += 1
            if n + cnt > max_events:
                raise SimError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            kind = head[2]
            if kind == _K_PCHAIN or kind == _K_PSTEP:
                phase = head[3]
                b = head[4]
            else:
                conv = head[3]

    def _phase_batch(self, phase: _Phase, until, n: int) -> int:
        """Vectorized drain of a delay-only phase's remaining segments.

        Part of the opt-in batch executor: when nothing else in the
        system can fire before the phase's last segment completes, the
        per-record scheduling collapses — each step's absolute time is a
        prefix sum of the step delays (``numpy.cumsum`` accumulates
        float64 sequentially, so each element is bit-identical to the
        scalar ``now + d`` chain), the k sequence numbers the scalar path
        would allocate are drawn in one run, and the step callbacks run
        in order at their step times.  Declines (returns 0) whenever the
        guard cannot prove non-interference — a real-heap record due at
        or before the phase's end, an ``until`` horizon, or the event
        budget — leaving the scalar path to handle it.

        Returns the number of events drained (k on success; the partial
        count when a callback raises, with the process failed exactly as
        at the unfused step).
        """
        heap = self._heap
        now = self.now
        if heap and heap[0][0] <= now:
            return 0
        np_mod = self._np
        segs = phase.segments
        idx = phase.idx
        k = len(segs) - idx
        arr = np_mod.empty(k + 1)
        arr[0] = now
        for j in range(k):
            arr[j + 1] = segs[idx + j][1]
        times = np_mod.cumsum(arr)
        end = times[k]
        if heap and heap[0][0] <= end:
            return 0
        if until is not None and end > until:
            return 0
        if n + k > self.max_events:
            return 0
        next_seq = self._seq.__next__
        proc = phase.proc
        j = 0
        try:
            for j in range(k):
                next_seq()
                cb = segs[idx + j][3]
                if cb is not None:
                    self.now = float(times[j + 1])
                    cb()
        except BaseException as exc:
            self.now = float(times[j + 1])
            phase.idx = idx + j
            self._finish(proc, None, exc)
            return j + 1
        phase.idx = idx + k
        self.now = float(end)
        self._resume(proc, phase.value)
        return k

    def _phase_cohort(self, vheap: list, until, n: int) -> int:
        """Batch-executor sweep of one same-timestamp phase-record cohort.

        In symmetric phases every rank's record lands on the same
        timestamp; this retires the whole tie in one pass instead of one
        heappop-compare-advance round per record.  Any mix of phase
        records is eligible — chain hops, segment advances (into chains
        *or* uncontended pins), and the four convoy hops of pin segments
        — as long as processing cannot interact with anything outside
        the tie: convoy records must sit on distinct waiter-free locks,
        and no record may resume a generator (phase completions are
        excluded).  Each record's processing is exactly the scalar
        loop's — same mutex transitions, same float additions, sequence
        numbers drawn at the same causal points — the successors are
        collected in seq order and, for a homogeneous cohort (equal
        delays/holds), form the next tie pre-sorted, so no heap
        operations happen at all in steady state.  The caller has
        already checked that the real heap cannot fire at or before the
        tie's timestamp.

        A cohort that is uniformly pin *grants* on a shared batch plan
        is first offered to :meth:`_phase_pin_run`, which collapses all
        but the last batch round to closed form.

        Returns the number of records retired (0 when the tie is not
        uniformly eligible).
        """
        T = vheap[0][0]
        if until is not None and T > until:
            return 0
        grants_only = True
        locks: set = set()
        k = 0
        for rec in vheap:
            if rec[0] != T:
                return 0
            kd = rec[2]
            if kd == _K_PCHAIN or kd == _K_PSTEP:
                grants_only = False
                if kd == _K_PCHAIN and rec[4] != 0.0:
                    k += 1
                    continue
                ph = rec[3]
                nidx = ph.idx + 1
                segs = ph.segments
                if nidx >= len(segs):
                    return 0  # completion would resume the generator
                nseg = segs[nidx]
                if nseg[0] != "c":
                    lock = nseg[1]
                    if lock.holder is not None or lock._waiters or lock in locks:
                        return 0
                    locks.add(lock)
                k += 1
                continue
            conv = rec[3]
            lock = conv.lock
            if lock in locks or lock._waiters:
                return 0
            locks.add(lock)
            if kd != _K_CGRANT:
                grants_only = False
                if kd != _K_CRELEASE:
                    # _K_CCHAIN / _K_CREJOIN: a finishing rejoin advances
                    # the owning phase — guard its next segment too.
                    if not (
                        kd == _K_CCHAIN and conv.batches[conv.idx][1] != 0.0
                    ) and conv.idx + 1 >= len(conv.batches):
                        ph = conv.phase
                        nidx = ph.idx + 1
                        segs = ph.segments
                        if nidx >= len(segs):
                            return 0
                        nseg = segs[nidx]
                        if nseg[0] != "c":
                            l2 = nseg[1]
                            if l2 is not lock and (
                                l2.holder is not None
                                or l2._waiters
                                or l2 in locks
                            ):
                                return 0
                            locks.add(l2)
            k += 1
        if n + k > self.max_events:
            return 0
        recs = sorted(vheap)  # all times equal: (time, seq) merge order
        vheap.clear()
        if grants_only:
            drained = self._phase_pin_run(recs, vheap, T, until, n)
            if drained:
                return drained
        self.now = T
        next_seq = self._seq.__next__
        out = []
        done = 0
        cur = None
        try:
            for rec in recs:
                done += 1
                kd = rec[2]
                if kd == _K_PCHAIN and rec[4] != 0.0:
                    out.append((T + rec[4], next_seq(), _K_PSTEP, rec[3], None))
                    continue
                if kd == _K_PCHAIN or kd == _K_PSTEP:
                    ph = rec[3]
                    cur = ph.proc
                    seg = ph.segments[ph.idx]
                    cb = seg[-1]
                    if cb is not None:
                        cb()
                    nidx = ph.idx + 1
                    ph.idx = nidx
                    nseg = ph.segments[nidx]
                    if nseg[0] == "c":
                        out.append(
                            (T + nseg[1], next_seq(), _K_PCHAIN, ph, nseg[2])
                        )
                    else:
                        pconv = _Convoy._for_phase(cur, nseg, ph)
                        cur.convoy = pconv
                        nseg[1]._acquire_core(cur)  # free by eligibility
                        out.append((T, next_seq(), _K_CGRANT, pconv, None))
                    continue
                conv = rec[3]
                cur = conv.proc
                if kd == _K_CGRANT:
                    lock = conv.lock
                    pages = conv.batches[conv.idx][0]
                    hmemo = conv.memo
                    hold = None
                    if hmemo is not None:
                        hsame = lock._socket_counts.get(cur.socket, 0)
                        hkey = (
                            pages,
                            hsame,
                            (1 if lock.holder is not None else 0)
                            + len(lock._waiters) - hsame,
                        )
                        hold = hmemo.get(hkey)
                    if hold is None:
                        hold = conv.hold_fn(pages, cur)
                        if hold < 0:
                            raise SimError(
                                f"negative delay in hold ({hold!r})"
                            )
                        if hmemo is not None:
                            hmemo[hkey] = hold
                    out.append((T + hold, next_seq(), _K_CRELEASE, conv, None))
                    continue
                if kd == _K_CRELEASE:
                    conv.lock._release_core(cur)  # no waiters by eligibility
                    out.append((T, next_seq(), _K_CCHAIN, conv, None))
                    continue
                # _K_CCHAIN / _K_CREJOIN
                if kd == _K_CCHAIN:
                    extra = conv.batches[conv.idx][1]
                    if extra != 0.0:
                        out.append(
                            (T + extra, next_seq(), _K_CREJOIN, conv, None)
                        )
                        continue
                mm = conv.mm
                if mm is not None:
                    mm.pages_pinned += conv.batches[conv.idx][0]
                conv.idx += 1
                if conv.idx < len(conv.batches):
                    conv.lock._acquire_core(cur)  # lock is free: re-grant
                    out.append((T, next_seq(), _K_CGRANT, conv, None))
                else:
                    cur.convoy = None
                    ph = conv.phase
                    seg = ph.segments[ph.idx]
                    cb = seg[-1]
                    if cb is not None:
                        cb()
                    nidx = ph.idx + 1
                    ph.idx = nidx
                    nseg = ph.segments[nidx]
                    if nseg[0] == "c":
                        out.append(
                            (T + nseg[1], next_seq(), _K_PCHAIN, ph, nseg[2])
                        )
                    else:
                        pconv = _Convoy._for_phase(cur, nseg, ph)
                        cur.convoy = pconv
                        nseg[1]._acquire_core(cur)
                        out.append((T, next_seq(), _K_CGRANT, pconv, None))
        except BaseException as exc:
            # The stepped process dies exactly as at the unfused step;
            # the unprocessed tie members stay pending.  _Phase and
            # _Convoy both carry .proc, and the raising paths that left
            # a convoy in flight clear it, as the scalar handlers do.
            out.extend(recs[done:])
            cur = rec[3].proc
            cur.convoy = None
            self._finish(cur, None, exc)
        srt = True
        for i in range(1, len(out)):
            if out[i - 1][0] > out[i][0]:
                srt = False
                break
        vheap.extend(out)
        if not srt:
            heapq.heapify(vheap)
        return done

    def _phase_pin_run(self, recs: list, vheap: list, T: float, until,
                       n: int) -> int:
        """Closed form of a homogeneous uncontended pin-grant cohort.

        ``recs`` is a same-timestamp tie of ``_K_CGRANT`` records whose
        convoys sit on distinct waiter-free locks (the cohort scan
        checked).  When every convoy runs the *same* remaining batch
        plan and every rank's hold comes out bit-equal per round, the
        ranks stay tied round for round — grants, releases, chains and
        rejoins each form one cohort after the next — so all but the
        last round collapse: per round, sequence numbers are drawn in
        the exact scalar order (releases, chains, rejoins, next grants
        — each rank in seq order), the clock advances by one
        ``t + hold`` / ``t + extra`` per cohort (the same operands every
        rank's scalar path adds), and the per-lock statistics are
        written back in closed form (release + re-acquire per round is
        ``generation += 2``, ``acquisitions += 1``, contender counts
        net zero — the same deferred-write argument as
        :meth:`_convoy_steady`).  The last round's grant cohort is
        materialised for the generic sweep, which owns the finishing
        rejoin's phase advance (callback + next-segment scheduling)
        with its per-record failure semantics.

        Declines (returns 0, no state mutated beyond memo fills, which
        are pure caches) whenever the batch plans or holds diverge, a
        real-heap record or ``until`` falls inside the collapsed span,
        or the event budget would be crossed — the generic sweep then
        proceeds record for record.
        """
        first = recs[0][3]
        fb = first.batches
        fidx = first.idx
        R = len(fb) - fidx
        if R < 2:
            return 0
        convs = []
        for rec in recs:
            conv = rec[3]
            if conv is not first and not (
                (conv.batches is fb and conv.idx == fidx)
                or conv.batches[conv.idx:] == fb[fidx:]
            ):
                return 0
            ph = conv.phase
            nidx = ph.idx + 1
            segs = ph.segments
            if nidx >= len(segs) or segs[nidx][0] != "c":
                return 0
            convs.append(conv)
        p = len(convs)
        holds = []
        try:
            for r in range(R):
                pages = fb[fidx + r][0]
                h0 = None
                for conv in convs:
                    proc = conv.proc
                    lock = conv.lock
                    hmemo = conv.memo
                    hold = None
                    if hmemo is not None:
                        hsame = lock._socket_counts.get(proc.socket, 0)
                        hkey = (
                            pages,
                            hsame,
                            (1 if lock.holder is not None else 0)
                            + len(lock._waiters) - hsame,
                        )
                        hold = hmemo.get(hkey)
                    if hold is None:
                        # The purity contract (see PinConvoy) makes the
                        # early call invisible; the profile it reads is
                        # the round-r profile (single member, no
                        # waiters, so the lock state never changes).
                        hold = conv.hold_fn(pages, proc)
                        if hold < 0:
                            return 0  # the scalar grant raises instead
                        if hmemo is not None:
                            hmemo[hkey] = hold
                    if h0 is None:
                        h0 = hold
                    elif hold != h0:
                        return 0
                holds.append(h0)
        except BaseException:
            return 0  # pure hold_fn: the scalar grant re-raises it
        # Collapsed span: rounds 0..R-2 retire fully; the round R-1
        # grants materialise at t_last.  Nothing external may fire at or
        # before t_last (equal-time real records carry smaller seqs and
        # would run first in the scalar merge).
        t = T
        total = 0
        for r in range(R - 1):
            extra = fb[fidx + r][1]
            t = t + holds[r]
            if extra != 0.0:
                t = t + extra
                total += 4 * p
            else:
                total += 3 * p
        heap = self._heap
        if heap and heap[0][0] <= t:
            return 0
        if until is not None and t > until:
            return 0
        if n + total > self.max_events:
            return 0
        next_seq = self._seq.__next__
        t = T
        pages_done = 0
        for r in range(R - 1):
            pages, extra = fb[fidx + r]
            for _ in range(p):  # the grants push their releases
                next_seq()
            t = t + holds[r]
            for _ in range(p):  # the releases push their chains
                next_seq()
            if extra != 0.0:
                for _ in range(p):  # the chains push their rejoins
                    next_seq()
                t = t + extra
            pages_done += pages
            if r < R - 2:
                for _ in range(p):  # the rejoins push the next grants
                    next_seq()
        # round R-2's rejoins push round R-1's grants: materialise them
        for conv in convs:
            vheap.append((t, next_seq(), _K_CGRANT, conv, None))
        rounds = R - 1
        dgen = 2 * rounds
        for conv in convs:
            lock = conv.lock
            g = lock.generation + dgen
            if lock._convoy_gen == lock.generation:
                lock._convoy_gen = g
            lock.generation = g
            lock.acquisitions += rounds
            if lock.max_contenders < 1:
                lock.max_contenders = 1
            mm = conv.mm
            if mm is not None:
                mm.pages_pinned += pages_done
            conv.idx += rounds
        self.now = t
        return total

    def _drain_plan_build(self, rec, ph, conv0, pcache):
        """Build one phase's reusable drain plan, or ``None`` to decline.

        The plan captures everything about the phase's remaining record
        stream that does not depend on the entry record's timestamp: the
        per-record delay vector (``dl``, with slot 0 zeroed for the
        already-scheduled entry record), the segment descriptors, the
        milestone positions (pin completions and callbacks), and the
        per-lock held-window index ranges used by the drain's safety
        check.  Warm collective rounds re-enter the drain with the exact
        same segment objects (the kernels cache emission per address
        pair), so the plan is keyed on segment identity and amortizes to
        one build per phase shape; the plan holds strong references to
        every keyed object, so a key match implies identity.

        Hold durations are baked in: ``hold_fn`` is asserted pure in
        ``(pages, profile)`` and is evaluated here under the exact
        single-holder profile the future grant will see, which is the
        profile every reuse sees too — the drain's runtime lock checks
        (waiter-free, held only by the entry convoy) guarantee it.
        Declines are never cached: they depend on live lock state.
        """
        proc = ph.proc
        segs = ph.segments
        k0 = rec[2]
        np_mod = self._np

        def _hold(lock, memo, hold_fn, pages, prc):
            # The bit-exact hold the scalar single-member grant would
            # compute, or None when that cannot be established purely.
            if memo is not None:
                h = memo.get((pages, 1, 0))
                if h is not None:
                    return h
            if lock._waiters:
                return None
            holder = lock.holder
            counts = lock._socket_counts
            if holder is None:
                if counts:  # pragma: no cover - invariant guard
                    return None
                # stage the single-holder profile the grant will see
                counts[prc.socket] = 1
                lock.holder = prc
                try:
                    h = hold_fn(pages, prc)
                except BaseException:
                    return None
                finally:
                    lock.holder = None
                    del counts[prc.socket]
            elif holder is prc:
                h = None
                try:
                    h = hold_fn(pages, prc)
                except BaseException:
                    return None
            else:
                return None
            if not h >= 0.0:
                return None  # negative (or NaN): the scalar grant raises
            if memo is not None:
                memo[(pages, 1, 0)] = h
            return h

        def _pin_pat(batches, r0, holds, entry_off, opened):
            # Record pattern of rounds r0.. of a pin segment, optionally
            # sliced ``entry_off`` records into round r0 (the in-flight
            # record, whose delta is forced to 0: already scheduled).
            dl = []
            pat = []
            nb = len(batches)
            for j in range(nb - r0):
                r = r0 + j
                extra = batches[r][1]
                if extra < 0.0:
                    return None
                dl.append(0.0)
                pat.append((_K_CGRANT, r))
                dl.append(holds[j])
                pat.append((_K_CRELEASE, r))
                dl.append(0.0)
                pat.append((_K_CCHAIN, r))
                if extra != 0.0:
                    dl.append(extra)
                    pat.append((_K_CREJOIN, r))
            if entry_off:
                dl = dl[entry_off:]
                pat = pat[entry_off:]
            dl[0] = 0.0
            acq = 1 if opened else 0
            rel = 0
            pages = 0
            for k2, r in pat:
                if k2 == _K_CRELEASE:
                    rel += 1
                elif k2 == _K_CREJOIN or (
                    k2 == _K_CCHAIN and batches[r][1] == 0.0
                ):
                    pages += batches[r][0]
                    if r + 1 < nb:
                        acq += 1
            return tuple(dl), tuple(pat), acq, rel, pages

        # -- walk the phase's remaining stream ------------------------------
        # Descriptor: (base, pat, seg_i, lock, seg, acq, rel, pages,
        #              held-at-entry, None) — slot 9 was the entry convoy
        #              in plan-free days; the runtime substitutes the live
        #              entry convoy, since plans outlive any one round's.
        descs = []
        dlist = []
        if conv0 is None:
            seg = segs[ph.idx]
            if k0 == _K_PCHAIN and rec[4] != 0.0:
                pat = ((_K_PCHAIN, -1), (_K_PSTEP, -1))
                dl = (0.0, rec[4])
            else:
                pat = ((k0, -1),)
                dl = (0.0,)
            descs.append((0, pat, ph.idx, None, seg, 0, 0, 0,
                          False, None))
            dlist.extend(dl)
        else:
            lock = conv0.lock
            batches = conv0.batches
            r0 = conv0.idx
            holds = []
            for r in range(r0, len(batches)):
                h = _hold(lock, conv0.memo, conv0.hold_fn,
                          batches[r][0], proc)
                if h is None:
                    return None
                holds.append(h)
            if k0 == _K_CGRANT:
                off = 0
            elif k0 == _K_CRELEASE:
                off = 1
            elif k0 == _K_CCHAIN:
                off = 2
            else:  # _K_CREJOIN (exists only when extra != 0)
                off = 3
            built = _pin_pat(batches, r0, holds, off, False)
            if built is None:
                return None
            dl, pat, acq, rel, pages = built
            descs.append((0, pat, ph.idx, lock, segs[ph.idx], acq,
                          rel, pages,
                          k0 == _K_CGRANT or k0 == _K_CRELEASE,
                          None))
            dlist.extend(dl)
        for si in range(ph.idx + 1, len(segs)):
            seg = segs[si]
            if seg[0] == "c":
                key = ("c", seg[1], seg[2])
                ent = pcache.get(key)
                if ent is None:
                    if seg[1] < 0.0 or seg[2] < 0.0:
                        return None
                    if seg[2] != 0.0:
                        ent = ((seg[1], seg[2]),
                               ((_K_PCHAIN, -1), (_K_PSTEP, -1)))
                    else:
                        ent = ((seg[1],), ((_K_PCHAIN, -1),))
                    pcache[key] = ent
                dl, pat = ent
                descs.append((len(dlist), pat, si, None, seg,
                              0, 0, 0, False, None))
                dlist.extend(dl)
            else:
                lock = seg[1]
                batches = seg[3]
                holds = []
                for b in batches:
                    h = _hold(lock, seg[6], seg[2], b[0], proc)
                    if h is None:
                        return None
                    holds.append(h)
                key = (id(batches), tuple(holds))
                ent = pcache.get(key)
                if ent is None:
                    ent = _pin_pat(batches, 0, holds, 0, True)
                    if ent is None:
                        return None
                    pcache[key] = ent
                dl, pat, acq, rel, pages = ent
                descs.append((len(dlist), pat, si, lock, seg, acq,
                              rel, pages, False, None))
                dlist.extend(dl)
        m = len(dlist)

        # -- derived tables: milestones and per-lock held windows -----------
        # Milestones: descs with closed-form lock writebacks or callbacks,
        # by last-record index (ascending, so the runtime can cut early).
        # ``mil_fold`` marks a plan whose every callback is a FoldBump:
        # such a window needs no merge-ordered milestone walk at all —
        # the runtime applies writebacks per phase (``wb``) and batches
        # the callback counts (``fcb``) after one bulk draw.
        mil = tuple(
            (di, desc[0] + len(desc[1]) - 1)
            for di, desc in enumerate(descs)
            if desc[3] is not None or desc[4][-1] is not None
        )
        mil_fold = True
        wb = []
        fcb = []
        for di, desc in enumerate(descs):
            last = desc[0] + len(desc[1]) - 1
            if desc[3] is not None:
                wb.append((di, last))
            cb = desc[4][-1]
            if cb is not None:
                if getattr(cb, "drain_fold", False):
                    fcb.append((last, cb))
                else:
                    mil_fold = False
        # Held windows as dlist index pairs, in stream order (both arrays
        # ascending).  Grant index -1 marks the held-at-entry window (the
        # acquire predates the drain); release index ``m`` marks a window
        # still held at end-of-stream.  ``wbase`` carries the owning
        # descriptor's base so the runtime can reproduce the scalar scan's
        # cut rule exactly: a window counts iff its descriptor starts
        # before the cut and its grant index is <= the cut.
        held0lock = None
        wg = []
        wr = []
        wbase = []
        wlocks = []
        ulocks = []
        useen = set()
        for desc in descs:
            lock = desc[3]
            if lock is None:
                continue
            base = desc[0]
            if id(lock) not in useen:
                useen.add(id(lock))
                ulocks.append((base, lock))
            start = None
            if desc[8]:
                start = -1
                held0lock = lock
            for j, (k2, _r2) in enumerate(desc[1]):
                li = base + j
                if k2 == _K_CGRANT:
                    if start is None:
                        start = li
                elif k2 == _K_CRELEASE and start is not None:
                    wg.append(start)
                    wr.append(li)
                    wbase.append(base)
                    wlocks.append(lock)
                    start = None
            if start is not None:  # still held at end-of-stream
                wg.append(start)
                wr.append(m)
                wbase.append(base)
                wlocks.append(lock)
        nw = len(wg)
        return {
            "m": m,
            "dl": np_mod.array(dlist),
            "descs": descs,
            "mil": mil,
            "mil_fold": mil_fold,
            "wb": tuple(wb),
            "fcb": tuple(fcb),
            "wg": np_mod.array(wg, dtype=np_mod.int64),
            "wr": np_mod.array(wr, dtype=np_mod.int64),
            "wbase": np_mod.array(wbase, dtype=np_mod.int64),
            "codes": np_mod.fromiter(
                (id(lk) for lk in wlocks), dtype=np_mod.int64, count=nw
            ),
            "ulocks": tuple(ulocks),
            "held0lock": held0lock,
        }

    def _phase_drain(self, vheap: list, until, n: int) -> int:
        """Deterministic multi-phase fast-forward of the whole vheap.

        The heavy end of the batch executor: when the real heap is empty,
        every pending record in the system belongs to an in-flight fused
        phase, and an uncontended phase's future is a straight line —
        each record pushes exactly one successor at a delay known in
        advance (chain delays, memoized or profile-pure pin holds, batch
        copy shares).  This routine builds each phase's remaining record
        stream up front (a per-phase ``cumsum`` over the same float
        operands the scalar loop would add, with the entry time as
        element zero, so every timestamp is bit-identical) and retires
        them wholesale: one bulk sequence-number draw per drained record
        (the counter is advanced with ``islice``, never replaced),
        per-lock statistics written back in closed form at each pin
        segment's completion point, and segment callbacks run at their
        exact causal positions.

        Commit order across phases is *relaxed*, and exactly that far:
        over the drained horizon every phase's records touch only its
        own process, its own locks' disjoint windows, and commutative
        sums, so any per-phase-monotonic commit order leaves bit-
        identical state — the per-record global ``(time, seq)``
        interleaving need not be materialized.  The one observable it
        does leak into is the parked records' sequence numbers: each
        phase's park draws its seq at the bulk position its predecessor
        count dictates, and same-timestamp parks are ordered by the
        reversed per-phase drained-time history (lexicographic; a
        history that is a suffix of another's orders first), which is
        precisely the order the scalar heap would have granted the
        draws.  The stream walk itself (patterns, delta vectors,
        milestone/window/callback tables) is memoized in
        ``_drain_plans`` keyed on the entry shape and segment
        identities — warm rounds re-enter with the kernel's cached
        segment objects, so the walk amortizes to one build per shape.
        When every milestone callback is a fold-aware counter bump
        (:class:`FoldBump`: pure arithmetic, cannot raise, reads
        nothing), the commit collapses further: one bulk consume, one
        closed-form writeback sweep per phase, one ``bump(n)`` per
        distinct counter.

        Holds are resolved without perturbing the stream: a memo hit
        under the steady single-member key, or an early ``hold_fn`` call
        evaluated under the exact single-holder contention profile the
        future grant will see (the lock is briefly staged when free —
        legal because ``memo``/phase emission assert purity in
        ``(pages, profile)``; see :class:`PinConvoy`).

        Declines (return 0, nothing mutated — memo fills excepted, which
        are pure caches) whenever the stream cannot be proven straight:
        an unresolvable hold, a waiter already queued, a lock held by
        anything but a drained phase's own entry convoy, two phases'
        pin windows touching on one lock (a wait could form), a failed
        order verification, or an event-budget crossing.  Records at or
        beyond the earliest *completion* record (which must resume its
        generator in the scalar loop) or past ``until`` are left for
        later: each phase parks its first undrained record back into
        the vheap bearing the sequence number its predecessor's bulk
        draw assigned, with lock state for a partially-drained pin
        segment replayed op-for-op through the real mutex cores — so
        the scalar loop resumes mid-stream bit-exactly.

        A raising segment callback truncates at exactly the scalar
        failure point: draws, clock, per-lock state and every other
        phase's parked record roll forward only to the raising record's
        merge position, and the raising process fails there.
        """
        np_mod = self._np
        # -- classify the in-flight records ---------------------------------
        plan = []        # (record, phase, entry convoy or None)
        parked = []      # records the scalar loop must process itself
        e_x = None       # earliest parked record: hard (strict) horizon
        for rec in vheap:
            k = rec[2]
            conv0 = None
            if k >= _K_PCHAIN:
                ph = rec[3]
            else:
                conv0 = rec[3]
                ph = conv0.phase
                if ph is None:
                    return 0  # an outside convoy is braided in: scalar
            done = False
            if k == _K_PSTEP or (k == _K_PCHAIN and rec[4] == 0.0):
                done = ph.idx + 1 >= len(ph.segments)
            elif k == _K_CREJOIN or k == _K_CCHAIN:
                b0 = conv0.batches
                if k == _K_CREJOIN or b0[conv0.idx][1] == 0.0:
                    done = (conv0.idx + 1 >= len(b0)
                            and ph.idx + 1 >= len(ph.segments))
            if done:
                parked.append(rec)
                if e_x is None or rec[0] < e_x:
                    e_x = rec[0]
            else:
                plan.append((rec, ph, conv0))
        if not plan:
            return 0
        plan.sort(key=lambda e: e[0][1])

        # -- fetch or build each phase's drain plan -------------------------
        # Warm rounds re-enter with identical segment objects (kernel
        # emission caches), so the expensive stream walk amortizes to one
        # :meth:`_drain_plan_build` per phase shape.  Plans hold strong
        # references to every object their key names by id, so a key
        # match implies identity.
        inf = float("inf")
        pes = []
        pcache = {}
        plans = self._drain_plans
        for rec, ph, conv0 in plan:
            k0 = rec[2]
            pkey = (ph.idx, k0,
                    conv0.idx if conv0 is not None else rec[4],
                    tuple(map(id, ph.segments[ph.idx:])))
            pln = plans.get(pkey)
            if pln is None:
                pln = self._drain_plan_build(rec, ph, conv0, pcache)
                if pln is None:
                    return 0
                if len(plans) >= 512:  # runaway-shape backstop
                    plans.clear()
                plans[pkey] = pln
            m = pln["m"]
            if m < 2:  # pragma: no cover - completion pre-scan covers this
                parked.append(rec)
                if e_x is None or rec[0] < e_x:
                    e_x = rec[0]
                continue
            buf = pln["dl"].copy()
            buf[0] = rec[0]
            pes.append({"rec": rec, "ph": ph, "proc": ph.proc,
                        "conv0": conv0, "pln": pln, "descs": pln["descs"],
                        "times": np_mod.cumsum(buf), "m": m})

        # -- horizon: strictly before the earliest parked record, at most
        #    ``until``, never a phase's completion record ---------------------
        drained_pes = []
        N = 0
        for pe in pes:
            times = pe["times"]
            hi = pe["m"] - 1
            if e_x is not None:
                s = int(np_mod.searchsorted(times, e_x, side="left"))
                if s < hi:
                    hi = s
            if until is not None:
                s = int(np_mod.searchsorted(times, until, side="right"))
                if s < hi:
                    hi = s
            if hi > 0:
                pe["ni"] = hi
                N += hi
                drained_pes.append(pe)
            else:
                # at/after the horizon already: stays put (and cannot
                # precede anything drained, which is strictly below it)
                parked.append(pe["rec"])
        if not drained_pes or n + N > self.max_events:
            return 0

        # -- propose and verify the global processing order -----------------
        # Any per-phase-monotonic commit order yields the same state:
        # over the drained window the phases are fully independent (the
        # locks are uncontended and the per-round held-windows strictly
        # disjoint — checked below), the closed-form lock writebacks
        # commute, and the stats are additive.  A stable time sort is
        # therefore exact for everything the scalar path can observe
        # EXCEPT the relative seq order of parked records sharing one
        # park timestamp; the park loop resolves exactly those few pairs
        # against the scalar draw rule (see :func:`_drain_seq_before`).
        T = np_mod.concatenate(
            [pe["times"][:pe["ni"]] for pe in drained_pes]
        )
        order = np_mod.argsort(T, kind="stable")
        ar = np_mod.arange(N, dtype=order.dtype)
        pos = np_mod.empty(N, dtype=order.dtype)
        pos[order] = ar
        gb = 0
        for pe in drained_pes:
            ni = pe["ni"]
            pe["pos"] = pos[gb:gb + ni]
            gb += ni

        # -- lock safety: waiter-free, held only by entry convoys, and
        #    per-round held-windows [acquire, release] strictly disjoint
        #    per lock (phases legitimately pipeline through each other's
        #    free gaps between rounds: the copy tails) ----------------------
        # Windows come precomputed as dlist index pairs in each phase's
        # plan; per phase, the scalar scan's cut rule selects the prefix
        # of windows whose descriptor starts before the cut AND whose
        # grant index is <= the cut (a grant record's acquire happened
        # one record earlier — the ADV or the previous rejoin, at the
        # same time).  Index -1 maps to -inf (held at entry), a release
        # index at/after the cut to +inf (still held at the cut).
        lockchk = {}
        held_by = {}
        sl = []
        el = []
        cl = []
        for pe in drained_pes:
            pln = pe["pln"]
            ni = pe["ni"]
            for base, lk in pln["ulocks"]:
                if base >= ni:
                    break
                lockchk.setdefault(id(lk), lk)
            h0 = pln["held0lock"]
            if h0 is not None:
                held_by[id(h0)] = pe["proc"]
            wg = pln["wg"]
            nw = int(np_mod.searchsorted(wg, ni, side="right"))
            nb = int(np_mod.searchsorted(pln["wbase"], ni, side="left"))
            if nb < nw:
                nw = nb
            if not nw:
                continue
            g = wg[:nw]
            r = pln["wr"][:nw]
            times = pe["times"]
            sl.append(np_mod.where(
                g >= 0, times[np_mod.maximum(g, 0)], -inf
            ))
            el.append(np_mod.where(
                r < ni, times[np_mod.minimum(r, pe["m"] - 1)], inf
            ))
            cl.append(pln["codes"][:nw])
        for lid, lock in lockchk.items():
            if lock._waiters:
                return 0
            if lock.holder is not None and (
                lock.holder is not held_by.get(lid)
            ):
                return 0
        if len(sl) > 1 or (sl and len(sl[0]) > 1):
            starts = np_mod.concatenate(sl)
            ends = np_mod.concatenate(el)
            codes = np_mod.concatenate(cl)
            o2 = np_mod.lexsort((starts, codes))
            starts = starts[o2]
            ends = ends[o2]
            codes = codes[o2]
            if bool(np_mod.any(
                (codes[1:] == codes[:-1]) & (starts[1:] <= ends[:-1])
            )):
                return 0

        # -- commit: bulk draws, closed-form lock writebacks, callbacks -----
        seq_iter = self._seq
        islice_ = itertools.islice
        sink = deque(maxlen=0).extend
        state = [None, 0]  # [first drawn seq, records consumed]

        def _consume(k):
            if k <= 0:
                return
            if state[0] is None:
                state[0] = next(seq_iter)
                state[1] += 1
                k -= 1
                if not k:
                    return
            sink(islice_(seq_iter, k))
            state[1] += k

        miles = []
        if all(pe["pln"]["mil_fold"] for pe in drained_pes):
            # Every callback in the window is a FoldBump: nothing can
            # raise or observe mid-drain state, so the merge-ordered
            # milestone walk collapses into one bulk draw, per-phase
            # closed-form lock writebacks (they commute: the locks are
            # uncontended, the windows disjoint, the sums additive) and
            # one batched bump per callback object.
            _consume(N)
            folds = {}
            for pe in drained_pes:
                ni = pe["ni"]
                descs = pe["descs"]
                pln = pe["pln"]
                proc = pe["proc"]
                for di, last in pln["wb"]:
                    if last >= ni:
                        break
                    desc = descs[di]
                    lock = desc[3]
                    acq = desc[5]
                    d = acq + desc[6]
                    if d:
                        g0 = lock.generation
                        if lock._convoy_gen == g0:
                            lock._convoy_gen = g0 + d
                        lock.generation = g0 + d
                    if acq:
                        lock.acquisitions += acq
                        if lock.max_contenders < 1:
                            lock.max_contenders = 1
                    if desc[8]:
                        # the entry convoy held this lock across drain
                        # start
                        counts = lock._socket_counts
                        left = counts[proc.socket] - 1
                        if left:
                            counts[proc.socket] = left
                        else:
                            del counts[proc.socket]
                        lock.holder = None
                    mm = desc[4][4]
                    if mm is not None:
                        mm.pages_pinned += desc[7]
                    proc.convoy = None
                for last, cb in pln["fcb"]:
                    if last >= ni:
                        break
                    ent = folds.get(id(cb))
                    if ent is None:
                        folds[id(cb)] = [cb, 1]
                    else:
                        ent[1] += 1
            for cb, cnt in folds.values():
                cb.bump(cnt)
        else:
            for pe in drained_pes:
                ni = pe["ni"]
                ppos = pe["pos"]
                descs = pe["descs"]
                for di, last in pe["pln"]["mil"]:
                    if last >= ni:
                        break
                    miles.append((int(ppos[last]), pe, descs[di], last))
            miles.sort(key=lambda e: e[0])
        exc_pe = exc_desc = exc_ = None
        cut = N
        for gp, pe, desc, last in miles:
            _consume(gp - state[1])
            lock = desc[3]
            seg = desc[4]
            if lock is not None:
                acq = desc[5]
                d = acq + desc[6]
                if d:
                    g0 = lock.generation
                    if lock._convoy_gen == g0:
                        lock._convoy_gen = g0 + d
                    lock.generation = g0 + d
                if acq:
                    lock.acquisitions += acq
                    if lock.max_contenders < 1:
                        lock.max_contenders = 1
                if desc[8]:
                    # the entry convoy held this lock across drain start
                    proc = pe["proc"]
                    counts = lock._socket_counts
                    left = counts[proc.socket] - 1
                    if left:
                        counts[proc.socket] = left
                    else:
                        del counts[proc.socket]
                    lock.holder = None
                mm = seg[4]
                if mm is not None:
                    mm.pages_pinned += desc[7]
                pe["proc"].convoy = None
            cb = seg[-1]
            if cb is not None:
                self.now = float(pe["times"][last])
                try:
                    cb()
                except BaseException as exc:
                    exc_pe, exc_desc, exc_ = pe, desc, exc
                    cut = gp
                    break
        if exc_pe is None:
            _consume(N - state[1])
            self.now = float(T[order[N - 1]])
        else:
            self.now = float(T[order[cut]])
        S0 = state[0]

        # -- park each phase's first undrained record -----------------------
        fresh = []  # [t, sq, kind, obj, aux, pe, ni] — seq-fixed below
        for pe in drained_pes:
            if pe is exc_pe:
                continue
            ni = pe["ni"]
            if cut < N:
                ni = int(np_mod.searchsorted(pe["pos"], cut))
                if ni == 0:
                    parked.append(pe["rec"])
                    continue
            ph = pe["ph"]
            proc = pe["proc"]
            desc = None
            for dsc in pe["descs"]:
                if ni < dsc[0] + len(dsc[1]):
                    desc = dsc
                    break
            off = ni - desc[0]
            kind, r = desc[1][off]
            t = float(pe["times"][ni])
            sq = S0 + int(pe["pos"][ni - 1])
            seg = desc[4]
            ph.idx = desc[2]
            if desc[3] is None:
                proc.convoy = None
                aux = seg[2] if kind == _K_PCHAIN else None
                fresh.append([t, sq, kind, ph, aux, pe, ni])
            else:
                lock = desc[3]
                # Cached descriptors carry no convoy (plans outlive any
                # one round's); the live entry convoy rides on the pe.
                conv = pe["conv0"] if desc[0] == 0 else None
                if conv is None:
                    conv = _Convoy._for_phase(proc, seg, ph)
                    proc.convoy = conv
                    lock._acquire_core(proc)
                else:
                    proc.convoy = conv
                batches = conv.batches
                mm = conv.mm
                # replay this partial segment's drained hops op-for-op
                # through the real mutex cores (they push no records)
                for k2, r2 in desc[1][:off]:
                    if k2 == _K_CRELEASE:
                        lock._release_core(proc)
                    elif k2 == _K_CREJOIN or (
                        k2 == _K_CCHAIN and batches[r2][1] == 0.0
                    ):
                        if mm is not None:
                            mm.pages_pinned += batches[r2][0]
                        conv.idx = r2 + 1
                        lock._acquire_core(proc)
                fresh.append([t, sq, kind, conv, None, pe, ni])
        # Freshly drawn parked seqs must tie-break against each other
        # exactly as the scalar heap would: a successor's seq is drawn
        # when its predecessor is processed, so same-park-time records
        # order by predecessor processing order, not by the stable-sort
        # rank the values above came from.  Re-deal each same-time
        # group's seq values in scalar draw order.  (Against everything
        # else — pre-drain in-flight records below S0, future draws at
        # S0 + N and up — the values already order correctly.)
        if len(fresh) > 1:
            fresh.sort(key=lambda e: e[0])
            i2 = 0
            nf = len(fresh)
            while i2 < nf:
                j2 = i2 + 1
                while j2 < nf and fresh[j2][0] == fresh[i2][0]:
                    j2 += 1
                if j2 - i2 > 1:
                    grp = fresh[i2:j2]
                    seqs = sorted(e[1] for e in grp)
                    grp.sort(key=_HistKey)
                    for sv, e in zip(seqs, grp):
                        e[1] = sv
                i2 = j2
        for t, sq, kind, obj, aux, pe, ni in fresh:
            parked.append((t, sq, kind, obj, aux))
        vheap.clear()
        vheap.extend(parked)
        heapq.heapify(vheap)
        if exc_pe is not None:
            exc_pe["ph"].idx = exc_desc[2]
            proc = exc_pe["proc"]
            proc.convoy = None
            self._finish(proc, None, exc_)
            return cut + 1
        return N

    # -- process stepping ---------------------------------------------------

    def _resume(self, proc: SimProcess, value: Any) -> None:
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as exc:  # process raised: record and propagate
            self._finish(proc, None, exc)
            return
        self._dispatch(proc, cmd)

    def _throw(self, proc: SimProcess, exc: BaseException) -> None:
        """Resume a process by raising ``exc`` inside it (used by channels)."""
        if proc.state in (_DONE, _FAILED):  # pragma: no cover - defensive
            return
        proc.state = _READY
        try:
            cmd = proc._gthrow(exc)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:
            self._finish(proc, None, err)
            return
        self._dispatch(proc, cmd)

    def _dispatch(self, proc: SimProcess, cmd: Any) -> None:
        # Protocol errors (double release, bad iovec, ...) fail the process
        # that issued the command, like a raise at the yield.
        try:
            tc = type(cmd)
            if tc is Delay:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RESUME, proc, None)
            elif tc is Acquire:
                proc.state = _BLOCKED
                cmd.lock._acquire(proc)
            elif tc is HoldRelease:
                proc.state = _BLOCKED
                self._push(cmd.dt, _K_RELEASE, proc, (cmd.lock, cmd.extra_dt))
            elif tc is DelayChain:
                proc.state = _BLOCKED
                self._push(cmd.d1, _K_CHAIN, proc, cmd.d2)
            elif tc is PinConvoy or tc is FaultConvoy:
                proc.state = _BLOCKED
                proc.convoy = _Convoy(proc, cmd)
                cmd.lock._acquire(proc)
            elif isinstance(cmd, PhaseCommand):
                # RingStage / TreeRound / PairwiseExchange: one dispatch
                # for the whole phase.  Rare (once per phase), so it stays
                # out of the run loop's inlined hot commands.
                proc.state = _BLOCKED
                self._phase_sched(_Phase(proc, cmd))
            elif tc is Release:
                cmd.lock._release(proc)
                # Releasing never blocks; continue the releaser via a fresh
                # record so the granted waiter (scheduled first) runs at the
                # same timestamp.
                proc.state = _BLOCKED
                self._push(0.0, _K_RESUME, proc, None)
            elif tc is Join:
                target = cmd.proc
                proc.state = _BLOCKED
                if target.state == _DONE:
                    self._push(0.0, _K_RESUME, proc, target.result)
                elif target.state == _FAILED:
                    self._push(0.0, _K_THROW, proc, target.error)
                else:
                    target._joiners.append(proc)
            elif isinstance(cmd, Command):
                # Channel commands (Send/Recv) know how to dispatch themselves
                # to avoid a circular import; see repro.sim.channels.
                proc.state = _BLOCKED
                cmd._dispatch(self, proc)  # type: ignore[attr-defined]
            else:
                self._finish(
                    proc,
                    None,
                    SimError(f"process {proc.name} yielded non-command {cmd!r}"),
                )
        except BaseException as exc:
            self._finish(proc, None, exc)

    def _finish(
        self, proc: SimProcess, result: Any, error: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.error = error
        proc.state = _FAILED if error is not None else _DONE
        proc.finish_time = self.now
        joiners, proc._joiners = proc._joiners, []
        if error is not None:
            for j in joiners:
                self._push(0.0, _K_THROW, j, error)
        else:
            for j in joiners:
                self._push(0.0, _K_RESUME, j, result)
