"""Discrete-event simulation substrate.

Processes are Python generators scheduled on a single global virtual clock
measured in microseconds.  A process *yields* command objects (``Delay``,
``Acquire``, ``Release``, ``Send``, ``Recv``, ``Join``) and is resumed by the
:class:`~repro.sim.engine.Simulator` when the command completes.  Nested
protocol layers (kernel syscalls, shared-memory transports, collective
algorithms) compose with ``yield from``.

The substrate is deliberately small: an event heap, a FIFO mutex whose
*contenders* are visible to hold-time models (this is how mm-lock cache-line
bouncing is expressed), tagged mailboxes, and a phase tracer that plays the
role ftrace plays in the paper.
"""

from repro.sim.engine import (
    Simulator,
    SimProcess,
    SimError,
    DeadlockError,
    Delay,
    DelayChain,
    Acquire,
    Release,
    HoldRelease,
    PinConvoy,
    FaultConvoy,
    PhaseCommand,
    RingStage,
    TreeRound,
    PairwiseExchange,
    Join,
)
from repro.sim.resources import Mutex, Semaphore
from repro.sim.channels import Mailbox, Message, Send, Recv, ANY
from repro.sim.trace import Tracer, Span

__all__ = [
    "Simulator",
    "SimProcess",
    "SimError",
    "DeadlockError",
    "Delay",
    "DelayChain",
    "Acquire",
    "Release",
    "HoldRelease",
    "PinConvoy",
    "FaultConvoy",
    "PhaseCommand",
    "RingStage",
    "TreeRound",
    "PairwiseExchange",
    "Join",
    "Mutex",
    "Semaphore",
    "Mailbox",
    "Message",
    "Send",
    "Recv",
    "ANY",
    "Tracer",
    "Span",
]
