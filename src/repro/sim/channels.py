"""Tagged mailboxes for inter-process messages.

These carry *control* traffic (buffer addresses, ready/fin notifications,
RTS/CTS rendezvous packets).  Transfer cost is whatever latency the caller
passes to ``Send``; the shared-memory transport layer decides that number.
Matching follows MPI semantics: a receive selects the oldest message whose
(source, tag) match, with ``ANY`` wildcards.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.engine import Command, SimError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimProcess, Simulator

__all__ = ["ANY", "Message", "Mailbox", "Send", "Recv"]


class _Any:
    def __repr__(self) -> str:
        return "ANY"


ANY = _Any()


class Message:
    """An in-flight or queued control message."""

    __slots__ = ("src", "tag", "payload", "sent_at")

    def __init__(self, src: int, tag: Any, payload: Any, sent_at: float):
        self.src = src
        self.tag = tag
        self.payload = payload
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Message(src={self.src}, tag={self.tag!r}, payload={self.payload!r})"


def _matches(msg: Message, src: Any, tag: Any) -> bool:
    return (src is ANY or msg.src == src) and (tag is ANY or msg.tag == tag)


class Mailbox:
    """Per-process queue of unexpected messages plus posted receives."""

    __slots__ = ("sim", "owner", "_queue", "_posted", "delivered")

    def __init__(self, sim: "Simulator", owner: int):
        self.sim = sim
        self.owner = owner
        self._queue: deque[Message] = deque()
        # posted receives: (proc, src, tag)
        self._posted: deque[tuple["SimProcess", Any, Any]] = deque()
        self.delivered = 0

    def deliver(self, msg: Message) -> None:
        """Called by the engine when a message arrives at this mailbox."""
        self.delivered += 1
        for i, (proc, src, tag) in enumerate(self._posted):
            if _matches(msg, src, tag):
                del self._posted[i]
                self.sim._schedule_resume(0.0, proc, msg)
                return
        self._queue.append(msg)

    def _post(self, proc: "SimProcess", src: Any, tag: Any) -> None:
        for i, msg in enumerate(self._queue):
            if _matches(msg, src, tag):
                del self._queue[i]
                self.sim._schedule_resume(0.0, proc, msg)
                return
        self._posted.append((proc, src, tag))

    def reset(self) -> None:
        """Drop queued/posted messages and the delivery counter."""
        self._queue.clear()
        self._posted.clear()
        self.delivered = 0

    @property
    def pending(self) -> int:
        return len(self._queue)


class Send(Command):
    """Deliver ``payload`` to ``mailbox`` after ``latency`` microseconds.

    The sender also burns ``overhead`` microseconds of its own time (the
    software cost of posting the message) before continuing.
    """

    __slots__ = ("mailbox", "src", "tag", "payload", "latency", "overhead")

    def __init__(
        self,
        mailbox: Mailbox,
        src: int,
        tag: Any,
        payload: Any = None,
        latency: float = 0.0,
        overhead: float = 0.0,
    ):
        if latency < 0 or overhead < 0:
            raise SimError("negative message latency/overhead")
        self.mailbox = mailbox
        self.src = src
        self.tag = tag
        self.payload = payload
        self.latency = latency
        self.overhead = overhead

    def _dispatch(self, sim: "Simulator", proc: "SimProcess") -> None:
        msg = Message(self.src, self.tag, self.payload, sim.now)
        # Delivery is scheduled before the sender's continuation: at equal
        # latency/overhead the receiver's wakeup keeps its FIFO precedence.
        sim._schedule_deliver(self.latency, self.mailbox, msg)
        sim._schedule_resume(self.overhead, proc, None)


class Recv(Command):
    """Block until a matching message is available; evaluates to it."""

    __slots__ = ("mailbox", "src", "tag")

    def __init__(self, mailbox: Mailbox, src: Any = ANY, tag: Any = ANY):
        self.mailbox = mailbox
        self.src = src
        self.tag = tag

    def _dispatch(self, sim: "Simulator", proc: "SimProcess") -> None:
        self.mailbox._post(proc, self.src, self.tag)
