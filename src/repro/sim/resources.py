"""Contended resources.

The only resource the kernel model needs is a FIFO mutex whose *contender
set* is observable: the mm-lock hold-time model inflates the critical
section as a function of how many processes (and on which sockets) are
fighting for the lock, which is how `get_user_pages` cache-line bouncing
shows up in the paper's Figure 4/5 measurements.

Contender accounting is incremental: per-socket counts are maintained on
acquire/release so :meth:`Mutex.contention_profile` — called once per pin
batch by the hold-time model — is O(1) instead of a scan over the waiter
queue.  A process's ``socket`` must therefore not change while it is
holding or waiting on a lock (placement is assigned at spawn time and the
machine layer never moves a pinned process).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import SimError, _K_CGRANT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimProcess, Simulator

__all__ = ["Mutex", "Semaphore"]


class Mutex:
    """FIFO mutual-exclusion lock with an observable contender set.

    Acquire/release go through the engine commands
    :class:`~repro.sim.engine.Acquire` / :class:`~repro.sim.engine.Release`
    (or the fused :class:`~repro.sim.engine.HoldRelease`); the methods here
    are engine-internal.  Grants are zero-delay dispatch records, so an
    uncontended acquire costs one ready-deque entry — no heap round-trip,
    no closure.

    Waiters are queued as ``(process, enqueue_time)`` pairs, so wait-time
    accounting cannot leak state for waiters that are never granted (e.g.
    a deadlocked simulation being torn down).

    Statistics (`acquisitions`, `total_wait_us`, `max_contenders`) feed the
    ftrace-style breakdowns.

    ``generation`` counts every acquire/release; ``_convoy_gen`` caches the
    generation at which the contender set was last known to consist solely
    of :class:`~repro.sim.engine.PinConvoy` members of this lock (the
    *closed epoch* the engine's convoy fast-forward requires).  Convoy-
    internal operations carry the cache forward incrementally — an acquire
    or release by a member of a closed epoch keeps it closed — while any
    operation by an outsider leaves it stale, which is the invalidation:
    the engine falls back to record-at-a-time execution until an O(c)
    rescan (:meth:`_convoy_closed`) proves the set is all-members again.

    Grant routing is convoy-shaped, not command-shaped: a grant inspects
    ``proc.convoy`` only, so the pin *segments* of fused phase commands
    (:class:`~repro.sim.engine.RingStage` and friends), which install the
    same engine-side convoy state, ride the exact same ``_K_CGRANT``
    records and epoch accounting as a yielded ``PinConvoy`` — no
    phase-specific branch exists here by design.
    """

    __slots__ = (
        "sim",
        "name",
        "holder",
        "_waiters",
        "_socket_counts",
        "acquisitions",
        "total_wait_us",
        "max_contenders",
        "generation",
        "_convoy_gen",
    )

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        self.sim = sim
        self.name = name
        self.holder: Optional["SimProcess"] = None
        self._waiters: deque[tuple["SimProcess", float]] = deque()
        self._socket_counts: dict[int, int] = {}
        self.acquisitions = 0
        self.total_wait_us = 0.0
        self.max_contenders = 0
        self.generation = 0
        self._convoy_gen = -1

    def reset(self) -> None:
        """Drop holder/waiter state and statistics (fresh-construction state)."""
        self.holder = None
        self._waiters.clear()
        self._socket_counts.clear()
        self.acquisitions = 0
        self.total_wait_us = 0.0
        self.max_contenders = 0
        self.generation = 0
        self._convoy_gen = -1

    # -- observability -------------------------------------------------------

    @property
    def contenders(self) -> list["SimProcess"]:
        """Processes currently involved with the lock: holder plus waiters."""
        out = [self.holder] if self.holder is not None else []
        out.extend(w for w, _ in self._waiters)
        return out

    @property
    def n_contenders(self) -> int:
        return (1 if self.holder is not None else 0) + len(self._waiters)

    def contention_profile(self, socket: int) -> tuple[int, int]:
        """Split the contender set into (same-socket, other-socket) counts
        relative to ``socket``.  Used by the bounce model; O(1)."""
        same = self._socket_counts.get(socket, 0)
        return same, self.n_contenders - same

    def _convoy_closed(self) -> bool:
        """True iff every contender is a convoy member of this lock.

        O(1) when the incremental cache is current; otherwise an O(c)
        rescan that revalidates the cache on success — this is how a
        convoy recovers the fast path after an outside contender (a
        mid-convoy arrival) has come and gone.
        """
        if self._convoy_gen == self.generation:
            return True
        h = self.holder
        if h is not None:
            c = h.convoy
            if c is None or c.lock is not self:
                return False
        for w, _ in self._waiters:
            c = w.convoy
            if c is None or c.lock is not self:
                return False
        self._convoy_gen = self.generation
        return True

    # -- engine internals ------------------------------------------------------

    def _acquire_core(self, proc: "SimProcess") -> bool:
        """State/stats part of an acquire; True when granted immediately.

        Shared by :meth:`_acquire` (which also schedules the grant record)
        and the engine's convoy fast-forward (which tracks the grant in
        its local loop) so both update contender counts, statistics and
        the epoch cache identically.
        """
        if self.holder is proc:
            raise SimError(f"{proc.name} re-acquired non-reentrant {self.name}")
        counts = self._socket_counts
        counts[proc.socket] = counts.get(proc.socket, 0) + 1
        g = self.generation + 1
        self.generation = g
        conv = proc.convoy
        if conv is not None and conv.lock is self and self._convoy_gen == g - 1:
            self._convoy_gen = g
        if self.holder is None:
            self.holder = proc
            self.acquisitions += 1
            n = 1 + len(self._waiters)
            if n > self.max_contenders:
                self.max_contenders = n
            return True
        self._waiters.append((proc, self.sim.now))
        n = 1 + len(self._waiters)
        if n > self.max_contenders:
            self.max_contenders = n
        return False

    def _acquire(self, proc: "SimProcess") -> None:
        if self._acquire_core(proc):
            conv = proc.convoy
            if conv is not None and conv.lock is self:
                self.sim._push(0.0, _K_CGRANT, conv, None)
            else:
                self.sim._schedule_resume(0.0, proc, None)

    def _release_core(self, proc: "SimProcess") -> Optional["SimProcess"]:
        """State/stats part of a release; returns the newly granted waiter.

        If the epoch was closed it stays closed: a closed epoch means the
        holder is a member, so the release is convoy-internal, and handing
        the lock to the next FIFO waiter cannot add an outsider.
        """
        if self.holder is not proc:
            raise SimError(
                f"{proc.name} released {self.name} held by "
                f"{self.holder.name if self.holder else 'nobody'}"
            )
        counts = self._socket_counts
        left = counts[proc.socket] - 1
        if left:
            counts[proc.socket] = left
        else:
            del counts[proc.socket]
        g = self.generation + 1
        self.generation = g
        if self._convoy_gen == g - 1:
            self._convoy_gen = g
        if self._waiters:
            nxt, since = self._waiters.popleft()
            self.holder = nxt
            self.acquisitions += 1
            self.total_wait_us += self.sim.now - since
            return nxt
        self.holder = None
        return None

    def _release(self, proc: "SimProcess") -> None:
        nxt = self._release_core(proc)
        if nxt is not None:
            conv = nxt.convoy
            if conv is not None and conv.lock is self:
                self.sim._push(0.0, _K_CGRANT, conv, None)
            else:
                self.sim._schedule_resume(0.0, nxt, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        h = self.holder.name if self.holder else None
        return f"<Mutex {self.name} holder={h} waiters={len(self._waiters)}>"


class Semaphore:
    """Counting semaphore with FIFO wakeups.

    Used for pooled capacities (shared-segment slots): ``Acquire`` takes a
    unit (blocking when none remain — the backpressure), ``Release``
    returns one.  Unlike :class:`Mutex` there is no holder identity:
    any process may release, which is exactly how a receiver frees a slot
    the sender acquired.

    Tracks ``total_wait_us``/``max_waiters`` the same way :class:`Mutex`
    does, so slot backpressure shows up in stats next to lock contention.
    """

    __slots__ = ("sim", "name", "capacity", "available", "_waiters",
                 "acquisitions", "total_wait_us", "max_waiters")

    def __init__(self, sim: "Simulator", capacity: int, name: str = "sem"):
        if capacity < 1:
            raise SimError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.available = capacity
        self._waiters: deque[tuple["SimProcess", float]] = deque()
        self.acquisitions = 0
        self.total_wait_us = 0.0
        self.max_waiters = 0

    def reset(self) -> None:
        """Restore full capacity and drop waiters/statistics."""
        self.available = self.capacity
        self._waiters.clear()
        self.acquisitions = 0
        self.total_wait_us = 0.0
        self.max_waiters = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    # -- engine internals ----------------------------------------------------

    def _acquire(self, proc: "SimProcess") -> None:
        if self.available > 0:
            self.available -= 1
            self.acquisitions += 1
            self.sim._schedule_resume(0.0, proc, None)
        else:
            self._waiters.append((proc, self.sim.now))
            if len(self._waiters) > self.max_waiters:
                self.max_waiters = len(self._waiters)

    def _release(self, proc: "SimProcess") -> None:
        if self._waiters:
            nxt, since = self._waiters.popleft()
            self.acquisitions += 1
            self.total_wait_us += self.sim.now - since
            self.sim._schedule_resume(0.0, nxt, None)
        else:
            if self.available >= self.capacity:
                raise SimError(f"{self.name}: release past capacity")
            self.available += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Semaphore {self.name} {self.available}/{self.capacity} "
            f"waiters={len(self._waiters)}>"
        )
