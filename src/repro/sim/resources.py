"""Contended resources.

The only resource the kernel model needs is a FIFO mutex whose *contender
set* is observable: the mm-lock hold-time model inflates the critical
section as a function of how many processes (and on which sockets) are
fighting for the lock, which is how `get_user_pages` cache-line bouncing
shows up in the paper's Figure 4/5 measurements.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import SimError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimProcess, Simulator

__all__ = ["Mutex", "Semaphore"]


class Mutex:
    """FIFO mutual-exclusion lock with an observable contender set.

    Acquire/release go through the engine commands
    :class:`~repro.sim.engine.Acquire` / :class:`~repro.sim.engine.Release`;
    the methods here are engine-internal.

    Statistics (`acquisitions`, `total_wait_us`, `max_contenders`) feed the
    ftrace-style breakdowns.
    """

    __slots__ = (
        "sim",
        "name",
        "holder",
        "_waiters",
        "_wait_since",
        "acquisitions",
        "total_wait_us",
        "max_contenders",
    )

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        self.sim = sim
        self.name = name
        self.holder: Optional["SimProcess"] = None
        self._waiters: deque["SimProcess"] = deque()
        self._wait_since: dict[int, float] = {}
        self.acquisitions = 0
        self.total_wait_us = 0.0
        self.max_contenders = 0

    # -- observability -------------------------------------------------------

    @property
    def contenders(self) -> list["SimProcess"]:
        """Processes currently involved with the lock: holder plus waiters."""
        out = [self.holder] if self.holder is not None else []
        out.extend(self._waiters)
        return out

    @property
    def n_contenders(self) -> int:
        return (1 if self.holder is not None else 0) + len(self._waiters)

    def contention_profile(self, socket: int) -> tuple[int, int]:
        """Split the contender set into (same-socket, other-socket) counts
        relative to ``socket``.  Used by the bounce model."""
        same = other = 0
        if self.holder is not None:
            if self.holder.socket == socket:
                same += 1
            else:
                other += 1
        for w in self._waiters:
            if w.socket == socket:
                same += 1
            else:
                other += 1
        return same, other

    # -- engine internals ------------------------------------------------------

    def _acquire(self, proc: "SimProcess") -> None:
        if self.holder is proc:
            raise SimError(f"{proc.name} re-acquired non-reentrant {self.name}")
        if self.holder is None:
            self.holder = proc
            self.acquisitions += 1
            self.max_contenders = max(self.max_contenders, self.n_contenders)
            self.sim.schedule(0.0, lambda: self.sim._resume(proc, None))
        else:
            self._waiters.append(proc)
            self._wait_since[proc.pid] = self.sim.now
            self.max_contenders = max(self.max_contenders, self.n_contenders)

    def _release(self, proc: "SimProcess") -> None:
        if self.holder is not proc:
            raise SimError(
                f"{proc.name} released {self.name} held by "
                f"{self.holder.name if self.holder else 'nobody'}"
            )
        if self._waiters:
            nxt = self._waiters.popleft()
            self.holder = nxt
            self.acquisitions += 1
            waited = self.sim.now - self._wait_since.pop(nxt.pid)
            self.total_wait_us += waited
            self.sim.schedule(0.0, lambda: self.sim._resume(nxt, None))
        else:
            self.holder = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        h = self.holder.name if self.holder else None
        return f"<Mutex {self.name} holder={h} waiters={len(self._waiters)}>"


class Semaphore:
    """Counting semaphore with FIFO wakeups.

    Used for pooled capacities (shared-segment slots): ``Acquire`` takes a
    unit (blocking when none remain — the backpressure), ``Release``
    returns one.  Unlike :class:`Mutex` there is no holder identity:
    any process may release, which is exactly how a receiver frees a slot
    the sender acquired.
    """

    __slots__ = ("sim", "name", "capacity", "available", "_waiters",
                 "acquisitions", "max_waiters")

    def __init__(self, sim: "Simulator", capacity: int, name: str = "sem"):
        if capacity < 1:
            raise SimError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.available = capacity
        self._waiters: deque["SimProcess"] = deque()
        self.acquisitions = 0
        self.max_waiters = 0

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    # -- engine internals ----------------------------------------------------

    def _acquire(self, proc: "SimProcess") -> None:
        if self.available > 0:
            self.available -= 1
            self.acquisitions += 1
            self.sim.schedule(0.0, lambda: self.sim._resume(proc, None))
        else:
            self._waiters.append(proc)
            self.max_waiters = max(self.max_waiters, len(self._waiters))

    def _release(self, proc: "SimProcess") -> None:
        if self._waiters:
            nxt = self._waiters.popleft()
            self.acquisitions += 1
            self.sim.schedule(0.0, lambda: self.sim._resume(nxt, None))
        else:
            if self.available >= self.capacity:
                raise SimError(f"{self.name}: release past capacity")
            self.available += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Semaphore {self.name} {self.available}/{self.capacity} "
            f"waiters={len(self._waiters)}>"
        )
