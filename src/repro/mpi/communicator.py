"""Node and communicator: the runtime the collective algorithms execute on.

A :class:`Node` is one simulated machine.  A :class:`Comm` pins ``p`` ranks
onto it, creates their address spaces, and — exactly like the paper's
design — exchanges the local-rank-to-PID mapping once at initialisation so
CMA calls can be issued without per-operation PID discovery.

Per-rank state during a collective lives in a :class:`RankCtx`, which is
what algorithm generators receive: rank ids, buffers, the CMA kernel, the
shm transport, and a per-rank collective sequence number (all ranks call
collectives in the same order, so equal counters identify one operation).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

import numpy as np

from repro.kernel import AddressSpaceManager, Buffer, CMAKernel, XpmemKernel
from repro.kernel.errors import CMAError, EFAULT, EINTR, ENOENT, EPERM, ESRCH
from repro.machine.arch import Architecture
from repro.shm import ShmTransport
from repro.shm import collectives as smc
from repro.sim import Simulator, Tracer
from repro.sim.engine import Join, SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan, FaultState

__all__ = ["Node", "Comm", "RankCtx"]


class Node:
    """One simulated machine: engine + kernel + transports.

    Pass an existing ``sim`` to place several nodes on one shared clock
    (the multi-node cluster does this); by default each node gets its own.
    """

    def __init__(
        self,
        arch: Architecture,
        verify: bool = True,
        trace: bool = False,
        sim: Optional[Simulator] = None,
        faults: Optional["FaultPlan"] = None,
    ):
        self.arch = arch
        self.verify = verify
        self.sim = sim if sim is not None else Simulator()
        self.tracer = Tracer(enabled=trace)
        self.manager = AddressSpaceManager(arch.params.page_size)
        self.cma = CMAKernel(
            self.sim, self.manager, arch.params, self.tracer, verify=verify
        )
        #: mapped-window lane, sharing the CMA kernel's spaces/locks/faults
        self.xpmem = XpmemKernel(self.cma)
        #: immutable fault plan (None = faults off, the default) and its
        #: per-run armed state; re-armed on every reset so a warm node
        #: replays identical injections.
        self.fault_plan = faults
        self.fault_state: Optional["FaultState"] = None
        if faults is not None:
            self.fault_state = faults.arm()
            self.cma.set_faults(self.fault_state)

    def reset(self) -> None:
        """Return the node to fresh-construction state, keeping structure.

        The engine restarts its clock/sequence stream, the tracer drops its
        spans, and the kernel resets counters, mm locks and address-space
        contents — but registered pids (and their recycled buffer arenas)
        survive, which is the whole point of warm reuse.  A fault plan is
        re-armed from scratch: call counters and RNG streams restart, so a
        reset node injects the exact same faults a fresh one would.
        """
        self.sim.reset()
        self.tracer.clear()
        self.cma.reset()
        # Address spaces were just reset, so every exported segment and
        # mapped window dangles: drop them all (stale segids must ENOENT).
        self.xpmem.reset()
        if self.fault_plan is not None:
            self.fault_state = self.fault_plan.arm()
            self.cma.set_faults(self.fault_state)

    @property
    def params(self):
        return self.arch.params


class Comm:
    """``p`` ranks on one node, with the PID table pre-exchanged.

    ``pid_base``/``name_prefix`` keep ranks distinguishable when several
    nodes share one simulator (multi-node clusters).
    """

    def __init__(
        self,
        node: Node,
        size: int,
        pid_base: int = 20_000,
        name_prefix: str = "rank",
    ):
        if size < 1:
            raise ValueError("communicator needs at least 1 rank")
        self.node = node
        self.size = size
        self.name_prefix = name_prefix
        self.shm = ShmTransport(
            node.sim, node.params, size, verify=node.verify
        )
        self._pids: list[int] = []
        self._placements = []
        for rank in range(size):
            pid = pid_base + rank  # deterministic, mirrors MPI_Init exchange
            place = node.arch.placement(rank)
            node.cma.register(pid, socket=place.socket)
            self._pids.append(pid)
            self._placements.append(place)
        self._op_counters = [itertools.count() for _ in range(size)]
        #: per-(caller_rank, target_rank) CMA capability verdicts.  The
        #: first CMA attempt doubles as the probe: a permission-class
        #: failure (EPERM/ESRCH) caches False and every later transfer on
        #: that pair goes straight to the shm fallback — mirroring how MPI
        #: libraries probe CMA once per peer and remember the answer.
        self.cma_verdicts: dict[tuple[int, int], bool] = {}
        #: per-(caller_rank, target_rank) xpmem verdicts, same contract
        self.xpmem_verdicts: dict[tuple[int, int], bool] = {}
        #: (caller_rank, segid) pairs already attached — the MPI-layer
        #: attach cache: mapped windows are reused across collective calls
        #: on this communicator, and invalidated wholesale on reset (the
        #: address-space reset dangles every segid).
        self._xpmem_attached: dict[tuple[int, int], bool] = {}
        #: degraded-mode counters, surfaced on CollectiveResult
        self.fallbacks = 0
        self.retries = 0
        self._fb_seq = itertools.count()
        #: whole-phase command cache for the CMA shape builders in
        #: :mod:`repro.core.phases`: warm rounds re-emit the exact same
        #: phase, so the per-stage segment assembly amortizes to one
        #: build per shape.  Keys are value-based (rank, geometry, peer
        #: addresses) plus the kernel's ``seg_epoch``, which advances on
        #: every registration/reset — anything that could change what
        #: the per-stage builder would emit.  The live fusion gates
        #: (faults armed, pin convoys off, denied pids) are re-checked
        #: in front of every lookup.
        self._fused_cache: dict = {}

    def reset(self) -> None:
        """Reset per-run transport state and the op-sequence counters.

        Must be paired with :meth:`Node.reset` — the shm mailboxes hold
        engine-scheduled state, and op counters feed message tags.
        """
        self.shm.reset()
        self._op_counters = [itertools.count() for _ in range(self.size)]
        self.cma_verdicts.clear()
        self.xpmem_verdicts.clear()
        self._xpmem_attached.clear()
        self._fused_cache.clear()
        self.fallbacks = 0
        self.retries = 0
        self._fb_seq = itertools.count()

    @property
    def resilient(self) -> bool:
        """True when a fault plan is armed: CMA ops route through the
        retry/fallback ladder instead of the raw syscalls."""
        return self.node.fault_state is not None

    # -- identity ------------------------------------------------------------

    def pid_of(self, rank: int) -> int:
        """The PID table entry — known to every rank since init."""
        return self._pids[rank]

    def space_of(self, rank: int):
        return self.node.manager.get(self._pids[rank])

    def placement_of(self, rank: int):
        return self._placements[rank]

    # -- memory ----------------------------------------------------------------

    def allocate(self, rank: int, nbytes: int, name: str = "buf") -> Buffer:
        """Allocate in one rank's address space."""
        return self.space_of(rank).allocate(nbytes, name=f"r{rank}:{name}")

    # -- execution ---------------------------------------------------------------

    def spawn_rank(
        self, rank: int, fn: Callable[["RankCtx"], Generator], **ctx_kw
    ) -> SimProcess:
        """Run ``fn(ctx)`` as rank ``rank`` (correct pid + placement)."""
        ctx = RankCtx(self, rank, **ctx_kw)
        place = self._placements[rank]
        proc = self.node.sim.spawn(
            fn(ctx),
            name=f"{self.name_prefix}{rank}",
            pid=self._pids[rank],
            socket=place.socket,
            core=place.core,
        )
        ctx.proc = proc
        return proc

    def run_ranks(
        self, fn: Callable[["RankCtx"], Generator], **ctx_kw
    ) -> list[SimProcess]:
        """Spawn ``fn`` on every rank and run the node to completion."""
        procs = [self.spawn_rank(r, fn, **ctx_kw) for r in range(self.size)]
        self.node.sim.run_all(procs)
        return procs

    # -- degraded mode: CMA retry ladder + shm fallback -----------------------

    def robust_rw(
        self,
        ctx: "RankCtx",
        peer: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        """One resilient CMA transfer: probe/retry, then shm fallback.

        The MPI-style error ladder (only active when a fault plan is
        armed; the fault-free path never enters this function):

        * ``EINTR`` — re-issue the call (bounded by the plan's
          ``max_attempts``);
        * a *short* count — resume from the byte offset already copied,
          again bounded by ``max_attempts``;
        * ``EPERM``/``ESRCH`` — permission-class: cache a False verdict
          for this (caller, target) pair and fall back;
        * ``EFAULT`` — fall back for this operation only (the pair's
          verdict survives: another buffer may be fine);
        * anything else (``EINVAL``...) — a programming error, re-raised.

        The fallback moves the remaining bytes over the two-copy shm
        transport, so the collective always completes with correct
        buffers; no kernel exception escapes to the simulator.
        """
        state = self.node.fault_state
        max_attempts = state.plan.max_attempts if state is not None else 1
        pid = self._pids[peer]
        fn = self.node.cma.write_simple if write else self.node.cma.read_simple
        want = min(local[1], remote[1])
        if want <= 0:
            return (yield from fn(ctx.proc, pid, local, remote))
        pair = (ctx.rank, peer)
        done = 0
        if self.cma_verdicts.get(pair, True):
            attempts = 0
            while attempts < max_attempts:
                attempts += 1
                try:
                    got = yield from fn(
                        ctx.proc,
                        pid,
                        (local[0] + done, local[1] - done),
                        (remote[0] + done, remote[1] - done),
                    )
                except CMAError as exc:
                    if exc.errno == EINTR:
                        self.retries += 1
                        continue
                    if exc.errno in (EPERM, ESRCH):
                        self.cma_verdicts[pair] = False
                        break
                    if exc.errno == EFAULT:
                        break
                    raise
                done += got
                if done >= want:
                    return want
                self.retries += 1  # short transfer: resume from offset
        if done < want:
            self.fallbacks += 1
            yield from self._fallback_transfer(
                ctx,
                peer,
                (local[0] + done, want - done),
                (remote[0] + done, want - done),
                write,
            )
        return want

    def robust_expose(self, ctx: "RankCtx", local: tuple[int, int]) -> Generator:
        """Resilient ``xpmem_make``: EINTR retries, then give up with None.

        Injections are per-call draws, so retrying a failed export can
        genuinely succeed.  A None segid tells the peers' transfers to go
        straight to the shm fallback — the collective still completes.
        """
        state = self.node.fault_state
        max_attempts = state.plan.max_attempts if state is not None else 1
        attempts = 0
        while attempts < max_attempts:
            attempts += 1
            try:
                segid = yield from self.node.xpmem.make_segid(
                    ctx.proc, local[0], local[1]
                )
                return segid
            except CMAError as exc:
                if exc.errno == EINTR:
                    self.retries += 1
                    continue
                if exc.errno in (EPERM, ESRCH, EFAULT, ENOENT):
                    break
                raise
        return None

    def robust_xpmem(
        self,
        ctx: "RankCtx",
        peer: int,
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        """One resilient mapped-window transfer: attach + copy, then fallback.

        The degrade ladder, mirroring :meth:`robust_rw`:

        * ``EINTR`` — re-issue (bounded by the plan's ``max_attempts``);
        * ``ENOENT`` — stale segid: invalidate the attach-cache entry and
          retry, so the next attempt re-attaches before copying;
        * ``EPERM``/``ESRCH`` — permission-class: cache a False xpmem
          verdict for the pair and fall back;
        * ``EFAULT`` — fall back for this operation only;
        * anything else — a programming error, re-raised.

        No short counts here: a mapped-window copy is a memcpy, it either
        completes or raises, so there is no resume-from-offset arm.
        """
        state = self.node.fault_state
        max_attempts = state.plan.max_attempts if state is not None else 1
        want = min(local[1], remote[1])
        pair = (ctx.rank, peer)
        key = (ctx.rank, segid)
        cache = self._xpmem_attached
        xp = self.node.xpmem
        if self.xpmem_verdicts.get(pair, True):
            attempts = 0
            while attempts < max_attempts:
                attempts += 1
                try:
                    if key not in cache:
                        yield from xp.attach(ctx.proc, segid)
                        cache[key] = True
                    fn = xp.copy_to if write else xp.copy_from
                    yield from fn(ctx.proc, segid, local, remote)
                    return want
                except CMAError as exc:
                    if exc.errno == EINTR:
                        self.retries += 1
                        continue
                    if exc.errno == ENOENT:
                        cache.pop(key, None)
                        self.retries += 1
                        continue
                    if exc.errno in (EPERM, ESRCH):
                        self.xpmem_verdicts[pair] = False
                        break
                    if exc.errno == EFAULT:
                        break
                    raise
        self.fallbacks += 1
        yield from self._fallback_transfer(
            ctx, peer, (local[0], want), (remote[0], want), write
        )
        return want

    def _fallback_transfer(
        self,
        ctx: "RankCtx",
        peer: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        """Move ``local``/``remote`` bytes via the two-copy shm path.

        CMA is one-sided — the peer is passive — so the fallback spawns a
        helper process with the *peer's* identity (pid/socket/core) to
        drive its side of the chunked transfer, then joins it.  Tags are
        sequence-numbered so concurrent fallbacks never cross-match.
        """
        n = min(local[1], remote[1])
        me = ctx.rank
        tag = ("cma-fb", me, peer, next(self._fb_seq))
        my_view = peer_view = None
        if self.node.verify:
            buf, off = self.space_of(me).resolve(local[0], n)
            my_view = buf.view(off, n)
            rbuf, roff = self.space_of(peer).resolve(remote[0], n)
            peer_view = rbuf.view(roff, n)
        place = self._placements[peer]
        shm = self.shm
        peer_gen = (
            shm.recv_data(peer, me, tag, peer_view, n)
            if write
            else shm.send_data(peer, me, tag, peer_view, n)
        )
        helper = self.node.sim.spawn(
            peer_gen,
            name=f"{self.name_prefix}{peer}:cma-fb",
            pid=self._pids[peer],
            socket=place.socket,
            core=place.core,
        )
        if write:
            yield from shm.send_data(me, peer, tag, my_view, n)
        else:
            yield from shm.recv_data(me, peer, tag, my_view, n)
        yield Join(helper)
        return n


class RankCtx:
    """Everything one rank sees while executing a collective."""

    def __init__(self, comm: Comm, rank: int, **extras: Any):
        self.comm = comm
        self.rank = rank
        self.size = comm.size
        self.node = comm.node
        self.sim = comm.node.sim
        self.cma = comm.node.cma
        self.xpmem = comm.node.xpmem
        self.shm = comm.shm
        self.params = comm.node.params
        self.topology = comm.node.arch.topology
        self.proc: Optional[SimProcess] = None
        # collective arguments, filled by the runner:
        self.root: int = extras.pop("root", 0)
        self.eta: int = extras.pop("eta", 0)
        self.sendbuf: Optional[Buffer] = extras.pop("sendbuf", None)
        self.recvbuf: Optional[Buffer] = extras.pop("recvbuf", None)
        self.in_place: bool = extras.pop("in_place", False)
        self.extras = extras

    # -- identity helpers ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.rank == self.root

    def pid_of(self, rank: int) -> int:
        return self.comm.pid_of(rank)

    def next_op(self) -> int:
        """Per-rank collective sequence number (identical across ranks
        because ranks invoke collectives in the same order)."""
        return next(self.comm._op_counters[self.rank])

    # -- phase fusion ----------------------------------------------------------

    def phase_fusible(self) -> bool:
        """True when this rank's data phases may ride fused shape commands.

        Fusion requires the untraced fast path (tracing records per-span
        observables between the fused delays), a fault-free run (an armed
        plan — even an empty one — routes transfers through the resilient
        ladder, whose probe/retry control flow cannot be precomputed), and
        the engine knob ``use_phase_fusion`` (off = the unfused reference
        mode of the differential battery).
        """
        return (
            self.sim.use_phase_fusion
            and not self.node.tracer.enabled
            and not self.comm.resilient
        )

    def cma_segments(
        self,
        peer: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Optional[list]:
        """Fused segments for one CMA transfer to/from ``peer``, or None."""
        return self.cma.rw_segments(
            self.proc, self.pid_of(peer), local, remote, write
        )

    def xpmem_segment(
        self,
        segid: Optional[int],
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ):
        """Fused segment for one *warm* mapped-window copy, or None.

        Refuses unless the MPI-layer attach cache already holds this
        (rank, segid) pair — an unattached window would cost an attach
        delay the fused segment cannot carry.
        """
        if segid is None or (self.rank, segid) not in self.comm._xpmem_attached:
            return None
        return self.xpmem.copy_segment(self.proc, segid, local, remote, write)

    # -- shm control-plane shortcuts -----------------------------------------------

    def sm_bcast(self, op: Any, payload: Any = None, root: int = 0) -> Generator:
        return smc.sm_bcast(self.shm, self.rank, self.size, op, payload, root)

    def sm_gather(self, op: Any, value: Any = None, root: int = 0) -> Generator:
        return smc.sm_gather(self.shm, self.rank, self.size, op, value, root)

    def sm_allgather(self, op: Any, value: Any = None) -> Generator:
        return smc.sm_allgather(self.shm, self.rank, self.size, op, value)

    def sm_barrier(self, op: Any) -> Generator:
        return smc.sm_barrier(self.shm, self.rank, self.size, op)

    def ctrl_send(self, dst: int, tag: Any, payload: Any = None):
        return self.shm.ctrl_send(self.rank, dst, tag, payload)

    def ctrl_recv(self, src: Any, tag: Any):
        return self.shm.ctrl_recv(self.rank, src, tag)

    def spawn_helper(self, gen: Generator, name: str) -> SimProcess:
        """Run a sub-operation concurrently *as this rank* (same pid/socket).

        This is how nonblocking pt2pt (isend/irecv) is expressed: the helper
        process shares the rank's identity so CMA contention accounting and
        address-space resolution stay correct.  Wait on it with ``Join``.
        """
        place = self.comm.placement_of(self.rank)
        return self.sim.spawn(
            gen,
            name=f"{self.comm.name_prefix}{self.rank}:{name}",
            pid=self.comm.pid_of(self.rank),
            socket=place.socket,
            core=place.core,
        )

    # -- CMA shortcuts ------------------------------------------------------------

    def cma_read(
        self, src_rank: int, local: tuple[int, int], remote: tuple[int, int]
    ) -> Generator:
        """Read ``remote`` of ``src_rank`` into my ``local``.

        With a fault plan armed this routes through the resilient ladder
        (:meth:`Comm.robust_rw`): EINTR retry, resume-from-offset on short
        counts, per-pair verdict caching, and shm fallback.  Fault-free
        runs return the raw syscall generator unchanged (bit-identical).
        """
        if self.comm.resilient:
            return self.comm.robust_rw(self, src_rank, local, remote, write=False)
        return self.cma.read_simple(self.proc, self.pid_of(src_rank), local, remote)

    def cma_write(
        self, dst_rank: int, local: tuple[int, int], remote: tuple[int, int]
    ) -> Generator:
        """Write my ``local`` into ``remote`` of ``dst_rank`` (resilient
        under an armed fault plan, exactly like :meth:`cma_read`)."""
        if self.comm.resilient:
            return self.comm.robust_rw(self, dst_rank, local, remote, write=True)
        return self.cma.write_simple(self.proc, self.pid_of(dst_rank), local, remote)

    # -- mapped-window (xpmem) shortcuts ---------------------------------------

    def xpmem_expose(self, local: tuple[int, int]) -> Generator:
        """Export my ``(addr, nbytes)`` range; returns the segid.

        Resilient mode retries EINTR and returns None when the export
        cannot be made — peers then route their transfers through the shm
        fallback (see :meth:`xpmem_read`).
        """
        if self.comm.resilient:
            return self.comm.robust_expose(self, local)
        return self.xpmem.make_segid(self.proc, local[0], local[1])

    def xpmem_read(
        self,
        src_rank: int,
        segid: Optional[int],
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Read ``remote`` of ``src_rank`` through its mapped window.

        Attaches on first use per (rank, segid) — the communicator-level
        attach cache makes later collectives on this comm reuse the
        window.  With a fault plan armed this routes through the
        resilient ladder (:meth:`Comm.robust_xpmem`); a None segid (a
        failed resilient export) goes straight to the shm fallback.
        """
        return self._xpmem_rw(src_rank, segid, local, remote, write=False)

    def xpmem_write(
        self,
        dst_rank: int,
        segid: Optional[int],
        local: tuple[int, int],
        remote: tuple[int, int],
    ) -> Generator:
        """Write my ``local`` through ``dst_rank``'s mapped window."""
        return self._xpmem_rw(dst_rank, segid, local, remote, write=True)

    def _xpmem_rw(
        self,
        peer: int,
        segid: Optional[int],
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        if segid is None:
            # only reachable in resilient mode: the owner's export failed
            # after retries, so move the bytes over the two-copy shm path.
            return self._xpmem_fallback(peer, local, remote, write)
        if self.comm.resilient:
            return self.comm.robust_xpmem(self, peer, segid, local, remote, write)
        return self._xpmem_plain(peer, segid, local, remote, write)

    def _xpmem_plain(
        self,
        peer: int,
        segid: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        cache = self.comm._xpmem_attached
        key = (self.rank, segid)
        if key not in cache:
            yield from self.xpmem.attach(self.proc, segid)
            cache[key] = True
        fn = self.xpmem.copy_to if write else self.xpmem.copy_from
        return (yield from fn(self.proc, segid, local, remote))

    def _xpmem_fallback(
        self,
        peer: int,
        local: tuple[int, int],
        remote: tuple[int, int],
        write: bool,
    ) -> Generator:
        self.comm.fallbacks += 1
        want = min(local[1], remote[1])
        yield from self.comm._fallback_transfer(
            self, peer, (local[0], want), (remote[0], want), write
        )
        return want

    def combine(
        self,
        dst: Buffer,
        dst_off: int,
        src: Buffer,
        src_off: int,
        nbytes: int,
    ) -> Generator:
        """Elementwise combine (modular uint8 sum): n * reduce_beta.

        The reduction operator used throughout the Reduce/Allreduce
        extension is addition mod 256 — commutative, associative, and
        exactly representable, so verification is bit-precise regardless
        of the combine order an algorithm uses.
        """
        from repro.sim import Delay

        yield Delay(nbytes * self.params.reduce_beta)
        if self.node.verify:
            dst.view(dst_off, nbytes)[:] += src.view(src_off, nbytes)
        return nbytes

    # -- local memcpy ----------------------------------------------------------------

    def memcpy(
        self,
        dst: Buffer,
        dst_off: int,
        src: Buffer,
        src_off: int,
        nbytes: int,
    ) -> Generator:
        """Local copy (root copying its own block): n * memcpy_beta."""
        from repro.sim import Delay

        yield Delay(nbytes * self.params.memcpy_beta)
        if self.node.verify:
            dst.view(dst_off, nbytes)[:] = src.view(src_off, nbytes)
        return nbytes
