"""Node and communicator: the runtime the collective algorithms execute on.

A :class:`Node` is one simulated machine.  A :class:`Comm` pins ``p`` ranks
onto it, creates their address spaces, and — exactly like the paper's
design — exchanges the local-rank-to-PID mapping once at initialisation so
CMA calls can be issued without per-operation PID discovery.

Per-rank state during a collective lives in a :class:`RankCtx`, which is
what algorithm generators receive: rank ids, buffers, the CMA kernel, the
shm transport, and a per-rank collective sequence number (all ranks call
collectives in the same order, so equal counters identify one operation).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.kernel import AddressSpaceManager, Buffer, CMAKernel
from repro.machine.arch import Architecture
from repro.shm import ShmTransport
from repro.shm import collectives as smc
from repro.sim import Simulator, Tracer
from repro.sim.engine import SimProcess

__all__ = ["Node", "Comm", "RankCtx"]


class Node:
    """One simulated machine: engine + kernel + transports.

    Pass an existing ``sim`` to place several nodes on one shared clock
    (the multi-node cluster does this); by default each node gets its own.
    """

    def __init__(
        self,
        arch: Architecture,
        verify: bool = True,
        trace: bool = False,
        sim: Optional[Simulator] = None,
    ):
        self.arch = arch
        self.verify = verify
        self.sim = sim if sim is not None else Simulator()
        self.tracer = Tracer(enabled=trace)
        self.manager = AddressSpaceManager(arch.params.page_size)
        self.cma = CMAKernel(
            self.sim, self.manager, arch.params, self.tracer, verify=verify
        )

    def reset(self) -> None:
        """Return the node to fresh-construction state, keeping structure.

        The engine restarts its clock/sequence stream, the tracer drops its
        spans, and the kernel resets counters, mm locks and address-space
        contents — but registered pids (and their recycled buffer arenas)
        survive, which is the whole point of warm reuse.
        """
        self.sim.reset()
        self.tracer.clear()
        self.cma.reset()

    @property
    def params(self):
        return self.arch.params


class Comm:
    """``p`` ranks on one node, with the PID table pre-exchanged.

    ``pid_base``/``name_prefix`` keep ranks distinguishable when several
    nodes share one simulator (multi-node clusters).
    """

    def __init__(
        self,
        node: Node,
        size: int,
        pid_base: int = 20_000,
        name_prefix: str = "rank",
    ):
        if size < 1:
            raise ValueError("communicator needs at least 1 rank")
        self.node = node
        self.size = size
        self.name_prefix = name_prefix
        self.shm = ShmTransport(
            node.sim, node.params, size, verify=node.verify
        )
        self._pids: list[int] = []
        self._placements = []
        for rank in range(size):
            pid = pid_base + rank  # deterministic, mirrors MPI_Init exchange
            place = node.arch.placement(rank)
            node.cma.register(pid, socket=place.socket)
            self._pids.append(pid)
            self._placements.append(place)
        self._op_counters = [itertools.count() for _ in range(size)]

    def reset(self) -> None:
        """Reset per-run transport state and the op-sequence counters.

        Must be paired with :meth:`Node.reset` — the shm mailboxes hold
        engine-scheduled state, and op counters feed message tags.
        """
        self.shm.reset()
        self._op_counters = [itertools.count() for _ in range(self.size)]

    # -- identity ------------------------------------------------------------

    def pid_of(self, rank: int) -> int:
        """The PID table entry — known to every rank since init."""
        return self._pids[rank]

    def space_of(self, rank: int):
        return self.node.manager.get(self._pids[rank])

    def placement_of(self, rank: int):
        return self._placements[rank]

    # -- memory ----------------------------------------------------------------

    def allocate(self, rank: int, nbytes: int, name: str = "buf") -> Buffer:
        """Allocate in one rank's address space."""
        return self.space_of(rank).allocate(nbytes, name=f"r{rank}:{name}")

    # -- execution ---------------------------------------------------------------

    def spawn_rank(
        self, rank: int, fn: Callable[["RankCtx"], Generator], **ctx_kw
    ) -> SimProcess:
        """Run ``fn(ctx)`` as rank ``rank`` (correct pid + placement)."""
        ctx = RankCtx(self, rank, **ctx_kw)
        place = self._placements[rank]
        proc = self.node.sim.spawn(
            fn(ctx),
            name=f"{self.name_prefix}{rank}",
            pid=self._pids[rank],
            socket=place.socket,
            core=place.core,
        )
        ctx.proc = proc
        return proc

    def run_ranks(
        self, fn: Callable[["RankCtx"], Generator], **ctx_kw
    ) -> list[SimProcess]:
        """Spawn ``fn`` on every rank and run the node to completion."""
        procs = [self.spawn_rank(r, fn, **ctx_kw) for r in range(self.size)]
        self.node.sim.run_all(procs)
        return procs


class RankCtx:
    """Everything one rank sees while executing a collective."""

    def __init__(self, comm: Comm, rank: int, **extras: Any):
        self.comm = comm
        self.rank = rank
        self.size = comm.size
        self.node = comm.node
        self.sim = comm.node.sim
        self.cma = comm.node.cma
        self.shm = comm.shm
        self.params = comm.node.params
        self.topology = comm.node.arch.topology
        self.proc: Optional[SimProcess] = None
        # collective arguments, filled by the runner:
        self.root: int = extras.pop("root", 0)
        self.eta: int = extras.pop("eta", 0)
        self.sendbuf: Optional[Buffer] = extras.pop("sendbuf", None)
        self.recvbuf: Optional[Buffer] = extras.pop("recvbuf", None)
        self.in_place: bool = extras.pop("in_place", False)
        self.extras = extras

    # -- identity helpers ------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.rank == self.root

    def pid_of(self, rank: int) -> int:
        return self.comm.pid_of(rank)

    def next_op(self) -> int:
        """Per-rank collective sequence number (identical across ranks
        because ranks invoke collectives in the same order)."""
        return next(self.comm._op_counters[self.rank])

    # -- shm control-plane shortcuts -----------------------------------------------

    def sm_bcast(self, op: Any, payload: Any = None, root: int = 0) -> Generator:
        return smc.sm_bcast(self.shm, self.rank, self.size, op, payload, root)

    def sm_gather(self, op: Any, value: Any = None, root: int = 0) -> Generator:
        return smc.sm_gather(self.shm, self.rank, self.size, op, value, root)

    def sm_allgather(self, op: Any, value: Any = None) -> Generator:
        return smc.sm_allgather(self.shm, self.rank, self.size, op, value)

    def sm_barrier(self, op: Any) -> Generator:
        return smc.sm_barrier(self.shm, self.rank, self.size, op)

    def ctrl_send(self, dst: int, tag: Any, payload: Any = None):
        return self.shm.ctrl_send(self.rank, dst, tag, payload)

    def ctrl_recv(self, src: Any, tag: Any):
        return self.shm.ctrl_recv(self.rank, src, tag)

    def spawn_helper(self, gen: Generator, name: str) -> SimProcess:
        """Run a sub-operation concurrently *as this rank* (same pid/socket).

        This is how nonblocking pt2pt (isend/irecv) is expressed: the helper
        process shares the rank's identity so CMA contention accounting and
        address-space resolution stay correct.  Wait on it with ``Join``.
        """
        place = self.comm.placement_of(self.rank)
        return self.sim.spawn(
            gen,
            name=f"{self.comm.name_prefix}{self.rank}:{name}",
            pid=self.comm.pid_of(self.rank),
            socket=place.socket,
            core=place.core,
        )

    # -- CMA shortcuts ------------------------------------------------------------

    def cma_read(
        self, src_rank: int, local: tuple[int, int], remote: tuple[int, int]
    ) -> Generator:
        """Read ``remote`` of ``src_rank`` into my ``local``."""
        return self.cma.read_simple(self.proc, self.pid_of(src_rank), local, remote)

    def cma_write(
        self, dst_rank: int, local: tuple[int, int], remote: tuple[int, int]
    ) -> Generator:
        """Write my ``local`` into ``remote`` of ``dst_rank``."""
        return self.cma.write_simple(self.proc, self.pid_of(dst_rank), local, remote)

    def combine(
        self,
        dst: Buffer,
        dst_off: int,
        src: Buffer,
        src_off: int,
        nbytes: int,
    ) -> Generator:
        """Elementwise combine (modular uint8 sum): n * reduce_beta.

        The reduction operator used throughout the Reduce/Allreduce
        extension is addition mod 256 — commutative, associative, and
        exactly representable, so verification is bit-precise regardless
        of the combine order an algorithm uses.
        """
        from repro.sim import Delay

        yield Delay(nbytes * self.params.reduce_beta)
        if self.node.verify:
            dst.view(dst_off, nbytes)[:] += src.view(src_off, nbytes)
        return nbytes

    # -- local memcpy ----------------------------------------------------------------

    def memcpy(
        self,
        dst: Buffer,
        dst_off: int,
        src: Buffer,
        src_off: int,
        nbytes: int,
    ) -> Generator:
        """Local copy (root copying its own block): n * memcpy_beta."""
        from repro.sim import Delay

        yield Delay(nbytes * self.params.memcpy_beta)
        if self.node.verify:
            dst.view(dst_off, nbytes)[:] = src.view(src_off, nbytes)
        return nbytes
