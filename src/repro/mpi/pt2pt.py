"""Point-to-point transfers: eager shared memory and CMA rendezvous.

This is how state-of-the-art libraries move intra-node messages, and what
the paper's *native* collectives improve on:

* **eager** (small messages): the payload rides shared memory; two copies,
  no handshake.
* **rendezvous** (>= ``RNDV_THRESHOLD``): the classic RTS/CTS protocol.
  The sender posts an RTS carrying its PID + buffer address, the receiver
  answers CTS, performs a single CMA read, then posts FIN.  Three control
  messages per transfer — exactly the overhead the native CMA collectives
  amortise by exchanging addresses once per collective (Fig. 9's CMA-coll
  vs CMA-pt2pt gap).

Both sides are generators; ``p2p_send``/``p2p_recv`` must be driven by the
two ranks involved.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.mpi.communicator import RankCtx

__all__ = ["p2p_send", "p2p_recv", "RNDV_THRESHOLD"]

#: switchover from eager (2-copy shm) to rendezvous (1-copy CMA), bytes.
#: The paper cites ~16 KiB as the point where kernel-assisted wins.
RNDV_THRESHOLD = 16 * 1024


def p2p_send(
    ctx: RankCtx,
    dst: int,
    tag: Any,
    buf,
    offset: int = 0,
    nbytes: Optional[int] = None,
    threshold: int = RNDV_THRESHOLD,
) -> Generator:
    """Send ``nbytes`` at ``buf[offset:]`` to rank ``dst``."""
    if nbytes is None:
        nbytes = buf.nbytes - offset
    if nbytes < threshold:
        # eager: data goes through the shared segment
        yield ctx.ctrl_send(dst, ("eager-hdr", tag), payload=nbytes)
        data = buf.view(offset, nbytes) if ctx.node.verify else None
        yield from ctx.shm.send_data(ctx.rank, dst, ("eager", tag), data, nbytes)
        return nbytes
    # rendezvous: RTS carries (pid, addr, len); receiver reads via CMA
    yield ctx.ctrl_send(
        dst,
        ("rts", tag),
        payload=(ctx.pid_of(ctx.rank), buf.addr + offset, nbytes),
    )
    yield ctx.ctrl_recv(dst, ("cts", tag))
    yield ctx.ctrl_recv(dst, ("fin", tag))
    return nbytes


def p2p_recv(
    ctx: RankCtx,
    src: int,
    tag: Any,
    buf,
    offset: int = 0,
    nbytes: Optional[int] = None,
    threshold: int = RNDV_THRESHOLD,
) -> Generator:
    """Receive into ``buf[offset:]`` from rank ``src``."""
    if nbytes is None:
        nbytes = buf.nbytes - offset
    if nbytes < threshold:
        yield ctx.ctrl_recv(src, ("eager-hdr", tag))
        out = buf.view(offset, nbytes) if ctx.node.verify else None
        yield from ctx.shm.recv_data(ctx.rank, src, ("eager", tag), out, nbytes)
        return nbytes
    msg = yield ctx.ctrl_recv(src, ("rts", tag))
    src_pid, src_addr, src_len = msg.payload
    ncopy = min(nbytes, src_len)
    yield ctx.ctrl_send(src, ("cts", tag))
    got = yield from ctx.cma.read_simple(
        ctx.proc, src_pid, (buf.addr + offset, ncopy), (src_addr, ncopy)
    )
    yield ctx.ctrl_send(src, ("fin", tag))
    return got
