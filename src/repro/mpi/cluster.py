"""Multi-node cluster: several simulated nodes on one clock plus a fabric.

Used by the simulation-backed version of the paper's Section VII-G
experiment (Fig. 17): the analytic :mod:`repro.core.multinode` model is
validated against actual discrete-event runs of flat vs. two-level Gather
on a :class:`Cluster`.

Fabric model (EDR IB / Omni-Path class, alpha-beta with endpoint
serialization):

* **TX**: a sender serializes on its node's NIC (a mutex) for
  ``alpha_net + nbytes * net_beta`` of wire time.
* **RX**: messages land in the destination rank's network mailbox; the
  receiver pays a per-message *matching* cost proportional to how many
  messages are queued when it posts the receive (the unexpected-queue
  traversal every real MPI pays), plus the copy-out of the payload.

Within a node everything is the usual machinery: each node owns its own
address spaces, CMA kernel and shm transport; only the fabric is shared.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.machine.arch import Architecture
from repro.mpi.communicator import Comm, Node, RankCtx
from repro.sim import Mailbox, Recv, Send, Simulator
from repro.sim.engine import Acquire, Delay, Release
from repro.sim.resources import Mutex

__all__ = ["Cluster", "net_send", "net_recv"]


class Cluster:
    """``nodes`` identical machines sharing one virtual clock and a fabric."""

    def __init__(
        self,
        arch_factory,
        nodes: int,
        ppn: int,
        verify: bool = True,
    ):
        if nodes < 1 or ppn < 1:
            raise ValueError("need at least one node and one rank per node")
        self.sim = Simulator()
        self.nodes_count = nodes
        self.ppn = ppn
        self.verify = verify
        self.nodes: list[Node] = []
        self.comms: list[Comm] = []
        for n in range(nodes):
            node = Node(arch_factory(), verify=verify, sim=self.sim)
            comm = Comm(
                node, ppn, pid_base=20_000 + n * 1000, name_prefix=f"n{n}r"
            )
            self.nodes.append(node)
            self.comms.append(comm)
        # fabric: one TX NIC lock per node, one network mailbox per rank
        self._nics = [Mutex(self.sim, name=f"nic[{n}]") for n in range(nodes)]
        self._net_boxes = {
            g: Mailbox(self.sim, owner=g) for g in range(nodes * ppn)
        }
        self.net_messages = 0

    # -- rank addressing --------------------------------------------------------

    @property
    def world_size(self) -> int:
        return self.nodes_count * self.ppn

    def node_of(self, global_rank: int) -> int:
        return global_rank // self.ppn

    def local_of(self, global_rank: int) -> int:
        return global_rank % self.ppn

    def global_rank(self, node: int, local: int) -> int:
        return node * self.ppn + local

    def leader_of(self, node: int) -> int:
        """Node leaders are local rank 0 (the paper's two-level design)."""
        return self.global_rank(node, 0)

    def comm_of(self, global_rank: int) -> Comm:
        return self.comms[self.node_of(global_rank)]

    def net_box(self, global_rank: int) -> Mailbox:
        return self._net_boxes[global_rank]

    def nic(self, node: int) -> Mutex:
        return self._nics[node]

    # -- execution ----------------------------------------------------------------

    def spawn_global(self, global_rank: int, fn, **ctx_kw):
        """Spawn ``fn(ctx)`` as a global rank on its home node's comm.

        The RankCtx is the node-local one (local rank ids); the cluster and
        global rank ride along in ``ctx.extras``.
        """
        comm = self.comm_of(global_rank)
        return comm.spawn_rank(
            self.local_of(global_rank),
            fn,
            cluster=self,
            grank=global_rank,
            **ctx_kw,
        )

    def run_world(self, fn, **ctx_kw):
        procs = [
            self.spawn_global(g, fn, **ctx_kw) for g in range(self.world_size)
        ]
        self.sim.run_all(procs)
        return procs


# ---------------------------------------------------------------------------
# fabric primitives (generators, driven by rank processes)
# ---------------------------------------------------------------------------


def net_send(
    ctx: RankCtx,
    dst_grank: int,
    tag: Any,
    buf,
    offset: int = 0,
    nbytes: Optional[int] = None,
) -> Generator:
    """Push ``nbytes`` over the wire to a global rank (TX-serialized)."""
    cluster: Cluster = ctx.extras["cluster"]
    me: int = ctx.extras["grank"]
    if nbytes is None:
        nbytes = buf.nbytes - offset
    p = ctx.params
    nic = cluster.nic(cluster.node_of(me))
    yield Acquire(nic)
    yield Delay(p.alpha_net + nbytes * p.net_beta)
    yield Release(nic)
    payload = None
    if cluster.verify and buf is not None:
        payload = np.array(buf.view(offset, nbytes), copy=True)
    cluster.net_messages += 1
    yield Send(
        cluster.net_box(dst_grank),
        src=me,
        tag=tag,
        payload=(payload, nbytes),
        latency=0.0,
    )
    return nbytes


def net_recv(
    ctx: RankCtx,
    src_grank: int,
    tag: Any,
    buf,
    offset: int = 0,
    nbytes: Optional[int] = None,
) -> Generator:
    """Receive a fabric message: matching cost scales with the queue depth
    at post time (the unexpected-message traversal), then copy out."""
    cluster: Cluster = ctx.extras["cluster"]
    me: int = ctx.extras["grank"]
    if nbytes is None:
        nbytes = buf.nbytes - offset
    box = cluster.net_box(me)
    backlog = box.pending
    p = ctx.params
    if backlog:
        yield Delay(p.t_match * backlog)
    msg = yield Recv(box, src=src_grank, tag=tag)
    payload, n = msg.payload
    n = min(n, nbytes)
    yield Delay(n * p.net_beta)  # RX copy-out, serialized at the receiver
    if cluster.verify and buf is not None and payload is not None:
        buf.view(offset, n)[:] = payload[:n]
    return n
