"""Mini-MPI over the simulated node.

Provides what the collective algorithms need and nothing more:

* :class:`~repro.mpi.communicator.Node` — one simulated machine: engine,
  address spaces, CMA kernel, shm transport, tracer.
* :class:`~repro.mpi.communicator.Comm` — ranks pinned to cores, the
  rank-to-PID table exchanged "at initialization" (as the paper's design
  does), buffer registration, and helpers to spawn per-rank work.
* :mod:`repro.mpi.pt2pt` — eager (shm) and rendezvous (RTS/CTS + CMA)
  point-to-point transfers; the baseline pt2pt-based collectives pay the
  control-message overheads the native designs eliminate.
* :mod:`repro.mpi.cluster` — several nodes on one clock plus an alpha-beta
  fabric (NIC serialization, matching-queue costs) for the multi-node
  experiments.
"""

from repro.mpi.communicator import Node, Comm, RankCtx
from repro.mpi.cluster import Cluster, net_recv, net_send
from repro.mpi.pt2pt import p2p_send, p2p_recv, RNDV_THRESHOLD

__all__ = [
    "Node",
    "Comm",
    "RankCtx",
    "Cluster",
    "net_send",
    "net_recv",
    "p2p_send",
    "p2p_recv",
    "RNDV_THRESHOLD",
]
