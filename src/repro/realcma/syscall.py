"""ctypes bindings for the real ``process_vm_readv``/``writev`` syscalls.

The signature mirrors ``man 2 process_vm_readv``::

    ssize_t process_vm_readv(pid_t pid,
                             const struct iovec *local_iov,  unsigned long liovcnt,
                             const struct iovec *remote_iov, unsigned long riovcnt,
                             unsigned long flags);

Buffers are passed as (address, length) pairs; helpers accept any object
exposing the buffer protocol for the local side.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import errno
import os
import sys
from typing import Sequence

__all__ = [
    "RealCMAError",
    "cma_available",
    "cma_unavailable_reason",
    "process_vm_readv",
    "process_vm_writev",
    "iov_from_buffer",
]


class RealCMAError(OSError):
    """A failed real CMA call (carries the kernel errno)."""


class _IoVec(ctypes.Structure):
    _fields_ = [
        ("iov_base", ctypes.c_void_p),
        ("iov_len", ctypes.c_size_t),
    ]


def _libc():
    if not sys.platform.startswith("linux"):
        return None
    try:
        return ctypes.CDLL(ctypes.util.find_library("c") or "libc.so.6", use_errno=True)
    except OSError:  # pragma: no cover - exotic platforms
        return None


_LIBC = _libc()
_READV = getattr(_LIBC, "process_vm_readv", None) if _LIBC else None
_WRITEV = getattr(_LIBC, "process_vm_writev", None) if _LIBC else None

for _fn in (_READV, _WRITEV):
    if _fn is not None:
        _fn.restype = ctypes.c_ssize_t
        _fn.argtypes = [
            ctypes.c_int,
            ctypes.POINTER(_IoVec),
            ctypes.c_ulong,
            ctypes.POINTER(_IoVec),
            ctypes.c_ulong,
            ctypes.c_ulong,
        ]


def cma_unavailable_reason() -> str | None:
    """Why real CMA can't run here, or ``None`` when it can.

    The syscalls must exist in libc AND Yama's ``ptrace_scope`` must allow
    a same-user child attach: scope >= 2 forbids non-root attach even to
    children, scope 3 forbids everyone.  The returned string is meant to be
    surfaced verbatim (test skip reasons, CLI diagnostics).
    """
    if _READV is None:
        if not sys.platform.startswith("linux"):
            return f"process_vm_readv requires Linux (platform is {sys.platform})"
        return "libc lacks process_vm_readv/process_vm_writev (kernel < 3.2?)"
    try:
        with open("/proc/sys/kernel/yama/ptrace_scope") as fh:
            scope = int(fh.read().strip())
    except (FileNotFoundError, ValueError):
        scope = 0
    if os.geteuid() == 0:
        if scope >= 3:
            return "Yama ptrace_scope=3 forbids all ptrace attach (even root)"
        return None
    if scope >= 2:
        return (
            f"Yama ptrace_scope={scope} forbids non-root same-user attach "
            f"(euid={os.geteuid()})"
        )
    return None


def cma_available() -> bool:
    """True when the syscalls exist AND a same-user child can be attached."""
    return cma_unavailable_reason() is None


def iov_from_buffer(buf) -> tuple[int, int]:
    """(address, length) of a writable buffer-protocol object."""
    view = memoryview(buf)
    if view.readonly:
        raise ValueError("buffer must be writable")
    address = ctypes.addressof(ctypes.c_char.from_buffer(buf))
    return address, view.nbytes


def _pack(iov: Sequence[tuple[int, int]]):
    arr = (_IoVec * max(len(iov), 1))()
    for i, (addr, ln) in enumerate(iov):
        if ln < 0:
            # ctypes would wrap a negative length into a huge c_size_t; the
            # kernel then rejects it with EINVAL.  Raise the same errno up
            # front so real and simulated kernels agree bit-for-bit on bad
            # iovecs (tests/test_realcma.py parity test).
            raise RealCMAError(errno.EINVAL, f"negative iovec length {ln}")
        arr[i].iov_base = addr
        arr[i].iov_len = ln
    return arr


def _call(fn, pid: int, local_iov, remote_iov, flags: int) -> int:
    # Validate iovecs before the availability check: bad arguments are
    # EINVAL on every host, which lets the real-vs-simulated errno parity
    # test run even where the syscall itself is missing.
    larr = _pack(local_iov)
    rarr = _pack(remote_iov)
    if fn is None:
        raise RealCMAError(errno.ENOSYS, "process_vm_readv/writev unavailable")
    got = fn(pid, larr, len(local_iov), rarr, len(remote_iov), flags)
    if got < 0:
        err = ctypes.get_errno()
        raise RealCMAError(err, os.strerror(err))
    return got


def process_vm_readv(
    pid: int,
    local_iov: Sequence[tuple[int, int]],
    remote_iov: Sequence[tuple[int, int]],
    flags: int = 0,
) -> int:
    """Read remote memory of ``pid`` into local buffers; returns bytes."""
    return _call(_READV, pid, local_iov, remote_iov, flags)


def process_vm_writev(
    pid: int,
    local_iov: Sequence[tuple[int, int]],
    remote_iov: Sequence[tuple[int, int]],
    flags: int = 0,
) -> int:
    """Write local buffers into remote memory of ``pid``; returns bytes."""
    return _call(_WRITEV, pid, local_iov, remote_iov, flags)
