"""Real-kernel One-to-all microbenchmark over ``multiprocessing``.

Reproduces the paper's Figure 2(b)/(c) experiment on the actual host: one
*source* process exposes a buffer; ``readers`` concurrent processes pull it
with real ``process_vm_readv`` calls and report per-call latency.  The
contention trend (per-reader latency rising with reader count) is the
paper's phenomenon in miniature, though the magnitude depends entirely on
the host's core count and kernel version.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
import os
import time
from dataclasses import dataclass

from repro.realcma.syscall import (
    RealCMAError,
    cma_unavailable_reason,
    iov_from_buffer,
    process_vm_readv,
)

__all__ = ["CMAUnavailable", "OneToAllResult", "one_to_all_read"]


class CMAUnavailable(RealCMAError):
    """Real CMA cannot run on this host; ``.reason`` says exactly why.

    Raised instead of a bare ENOSYS so harness callers (CLIs, tests) can
    skip-with-reason rather than report a failure.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(38, reason)  # 38 == ENOSYS


@dataclass(frozen=True)
class OneToAllResult:
    """Outcome of one real-kernel one-to-all run."""

    readers: int
    nbytes: int
    iters: int
    mean_latency_us: float
    max_latency_us: float
    verified: bool


def _source_proc(nbytes: int, addr_q: mp.Queue, stop_evt) -> None:
    buf = ctypes.create_string_buffer(nbytes)
    pattern = bytes((i * 31 + 7) % 251 for i in range(min(nbytes, 4096)))
    data = (pattern * (nbytes // len(pattern) + 1))[:nbytes]
    buf.raw = data
    addr_q.put((os.getpid(), ctypes.addressof(buf), nbytes))
    stop_evt.wait()


def _reader_proc(src, nbytes: int, iters: int, out_q: mp.Queue, go_evt) -> None:
    pid, addr, _ = src
    local = ctypes.create_string_buffer(nbytes)
    liov = [iov_from_buffer(local)]
    riov = [(addr, nbytes)]
    go_evt.wait()
    t0 = time.perf_counter()
    got = 0
    try:
        for _ in range(iters):
            got = process_vm_readv(pid, liov, riov)
    except RealCMAError as exc:
        out_q.put(("error", str(exc)))
        return
    dt_us = (time.perf_counter() - t0) * 1e6 / iters
    first = local.raw[:64]
    expected = bytes((i * 31 + 7) % 251 for i in range(min(64, nbytes)))
    ok = got == nbytes and first == expected[: len(first)]
    out_q.put(("ok", dt_us, ok))


def one_to_all_read(
    readers: int = 4, nbytes: int = 256 * 1024, iters: int = 20
) -> OneToAllResult:
    """Run the one-to-all read pattern against the live kernel.

    Raises :class:`CMAUnavailable` (with the precise reason) if the
    syscall is unavailable or the kernel forbids the attach; check
    :func:`cma_unavailable_reason` first to skip gracefully.
    """
    reason = cma_unavailable_reason()
    if reason is not None:
        raise CMAUnavailable(reason)
    ctx = mp.get_context("fork")
    addr_q = ctx.Queue()
    out_q = ctx.Queue()
    stop_evt = ctx.Event()
    go_evt = ctx.Event()
    source = ctx.Process(target=_source_proc, args=(nbytes, addr_q, stop_evt))
    source.start()
    try:
        src = addr_q.get(timeout=10)
        workers = [
            ctx.Process(
                target=_reader_proc, args=(src, nbytes, iters, out_q, go_evt)
            )
            for _ in range(readers)
        ]
        for w in workers:
            w.start()
        go_evt.set()
        lat, verified = [], True
        for _ in workers:
            msg = out_q.get(timeout=60)
            if msg[0] == "error":
                raise RealCMAError(1, msg[1])
            lat.append(msg[1])
            verified = verified and msg[2]
        for w in workers:
            w.join(timeout=10)
        return OneToAllResult(
            readers=readers,
            nbytes=nbytes,
            iters=iters,
            mean_latency_us=sum(lat) / len(lat),
            max_latency_us=max(lat),
            verified=verified,
        )
    finally:
        stop_evt.set()
        source.join(timeout=10)
        if source.is_alive():  # pragma: no cover - cleanup path
            source.terminate()
