"""Real Cross Memory Attach: ctypes bindings to the live syscalls.

Everything else in this repository simulates CMA; this package calls the
actual ``process_vm_readv``/``process_vm_writev`` syscalls between real
forked processes, preserving the paper's code path end to end.  Absolute
timings on a development host are *not* the paper's testbed numbers (the
repro band notes the performance contribution is lost), but:

* correctness of the syscall usage (iovec layout, permission handling,
  partial transfers) is tested against the real kernel, and
* the One-to-all microbenchmark (:mod:`repro.realcma.harness`) can
  demonstrate the contention trend on any multi-core Linux box.

Requires Linux >= 3.2 and either root or ``ptrace_scope`` permitting
same-user attach; callers should check :func:`cma_available` first.
"""

from repro.realcma.syscall import (
    cma_available,
    cma_unavailable_reason,
    process_vm_readv,
    process_vm_writev,
    RealCMAError,
)
from repro.realcma.harness import CMAUnavailable, one_to_all_read, OneToAllResult

__all__ = [
    "cma_available",
    "cma_unavailable_reason",
    "process_vm_readv",
    "process_vm_writev",
    "RealCMAError",
    "CMAUnavailable",
    "one_to_all_read",
    "OneToAllResult",
]
