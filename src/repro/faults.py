"""Seedable, deterministic fault injection for the simulated kernel path.

The real CMA syscalls fail in well-catalogued ways — Yama denies the
attach (``EPERM``), the peer exited (``ESRCH``), a page is unmapped
(``EFAULT``), a signal interrupts the call (``EINTR``), or
``process_vm_readv`` returns a *short* count truncated at a page boundary
— and production MPI libraries degrade to the two-copy shared-memory path
rather than abort.  This module injects exactly those failures into the
simulated kernel so the rest of the stack can prove it survives them.

Design contract:

* **Off by default, bit-identical when off.**  A node built without a
  :class:`FaultPlan` (or with an empty one) produces the exact event
  stream, timestamps and results it did before this module existed; the
  golden fixtures in ``tests/golden`` enforce that differentially.
* **Deterministic.**  A :class:`FaultPlan` is immutable and seedable;
  arming it yields a :class:`FaultState` whose probabilistic draws come
  from per-``(spec, op, pid)`` :class:`random.Random` streams seeded with
  *strings* (never Python's process-randomised ``hash()``), and whose
  scheduled faults key on the per-``(op, pid)`` call index.  Because the
  simulator itself is deterministic, the same plan + the same spec
  reproduce identical injections, counters and timestamps.
* **Keyable.**  Both dataclasses are frozen and built from primitives, so
  a plan embeds cleanly in a :class:`~repro.core.runner.CollectiveSpec`,
  pickles across the process pool, and fingerprints into cache keys via
  :mod:`repro.exec.keying`.

Injection sites (the ``op`` namespace):

=========  ==============================================================
``readv``  ``process_vm_readv`` (``pid`` = the attach target)
``writev`` ``process_vm_writev`` (``pid`` = the attach target)
``declare`` KNEM region declaration (``pid`` = the region owner)
``tx``     LiMIC descriptor creation (``pid`` = the buffer owner)
``make``   XPMEM segment creation (``pid`` = the exporting owner)
``attach`` XPMEM window attach (``pid`` = the segment owner)
``xcopy``  XPMEM mapped-window copy (``pid`` = the segment owner)
=========  ==============================================================

Fault kinds:

* ``eperm`` / ``esrch`` / ``efault`` / ``eintr`` — raise the errno from
  the syscall's permission/access-check point.
* ``enoent`` — the XPMEM stale-segid failure (the owner revoked or
  recycled the segment): ``attach``/``xcopy`` raise ``ENOENT`` and the
  resilient layer re-attaches before degrading to shm.
* ``partial`` — truncate the transfer at a page boundary and return a
  short byte count, like the real ``process_vm_rw`` when it faults midway
  through pinning; ``factor`` picks the truncation point (fraction of the
  remote pages kept, default 0.5).  Only fires when the transfer spans at
  least two pages — a single-page op cannot return a short count.
* ``straggler`` — not drawn per call: a static slowdown of every matching
  pid, scaling its caller-side kernel delays (entry/check/copy) *and* the
  hold time of its mm lock by ``factor`` (default 2.0).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.kernel.errors import EFAULT, EINTR, ENOENT, EPERM, ESRCH

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultState",
    "parse_plan",
    "plan_from_env",
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FAULT_OPS",
]

#: environment knob consumed by the fault-matrix tests and the
#: ``python -m repro.bench faults`` CLI (never by default runs).
ENV_FAULTS = "REPRO_FAULTS"

FAULT_KINDS = ("eperm", "enoent", "esrch", "efault", "eintr", "partial", "straggler")
FAULT_OPS = ("any", "readv", "writev", "declare", "tx", "make", "attach", "xcopy")

#: errno raised per errno-kind fault.
KIND_ERRNO = {
    "eperm": EPERM,
    "enoent": ENOENT,
    "esrch": ESRCH,
    "efault": EFAULT,
    "eintr": EINTR,
}

_DEFAULT_FACTOR = {"partial": 0.5, "straggler": 2.0}
#: default probabilities used by :func:`parse_plan` when a kind is named
#: without an ``@value``.
_DEFAULT_PROB = {
    "eperm": 0.1,
    "enoent": 0.05,
    "esrch": 0.05,
    "efault": 0.05,
    "eintr": 0.15,
    "partial": 0.35,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what to inject, where, and when.

    ``calls`` schedules exact injections by per-``(op, pid)`` call index
    (0-based, counting every attempt including retries); when ``calls`` is
    None the spec is probabilistic with per-call probability ``prob``.
    ``pid`` of None matches any target.  ``factor`` is the partial
    truncation fraction or the straggler slowdown (see module docstring).
    """

    kind: str
    op: str = "any"
    pid: Optional[int] = None
    calls: Optional[Tuple[int, ...]] = None
    prob: float = 0.0
    factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (not in {FAULT_KINDS})")
        if self.op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r} (not in {FAULT_OPS})")
        if self.calls is not None:
            object.__setattr__(self, "calls", tuple(int(c) for c in self.calls))
            if any(c < 0 for c in self.calls):
                raise ValueError("call indices must be >= 0")
        if not (0.0 <= self.prob <= 1.0):
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.factor is not None and self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.kind == "straggler" and (self.calls is not None or self.prob):
            raise ValueError(
                "straggler is a static per-pid slowdown; it takes no "
                "calls/prob trigger"
            )

    @property
    def resolved_factor(self) -> float:
        if self.factor is not None:
            return self.factor
        return _DEFAULT_FACTOR.get(self.kind, 1.0)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault rules plus the seed that arms them.

    ``max_attempts`` bounds the resilient MPI layer's CMA retry loop
    (EINTR re-issues and resume-from-offset after partials) before it
    falls back to the two-copy shm path.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    max_attempts: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise ValueError(f"specs must be FaultSpec instances, got {s!r}")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def arm(self) -> "FaultState":
        """Create the mutable per-run draw state for this plan."""
        return FaultState(self)


class FaultState:
    """Per-run mutable state of an armed :class:`FaultPlan`.

    One instance lives per simulated run (re-armed on every warm-node
    reset), so call counters and RNG streams restart identically and the
    same plan reproduces the same injections.
    """

    __slots__ = ("plan", "_calls", "_rngs", "_scales", "injected")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: per-(op, pid) call counter — the scheduling key space
        self._calls: dict = {}
        #: per-(spec index, op, pid) RNG streams for probabilistic specs
        self._rngs: dict = {}
        self._scales: dict = {}
        #: injections actually fired, by kind
        self.injected: dict = {}

    def _rng(self, i: int, op: str, pid: int) -> random.Random:
        key = (i, op, pid)
        rng = self._rngs.get(key)
        if rng is None:
            # String seeding goes through SHA-512 — deterministic across
            # processes regardless of PYTHONHASHSEED (tuples would not be).
            rng = random.Random(f"{self.plan.seed}/{i}/{op}/{pid}")
            self._rngs[key] = rng
        return rng

    def draw(
        self, op: str, pid: int, caller_pid: int, pages: int = 0
    ) -> Optional[FaultSpec]:
        """One injection decision for one call; returns the firing spec.

        Advances the ``(op, pid)`` call index exactly once per call.
        Specs are evaluated in plan order and the first one that fires
        wins (later specs are not drawn that call).  ``pages`` gates
        ``partial`` eligibility: short counts need >= 2 remote pages.
        """
        idx = self._calls.get((op, pid), 0)
        self._calls[(op, pid)] = idx + 1
        for i, spec in enumerate(self.plan.specs):
            if spec.kind == "straggler":
                continue
            if spec.op != "any" and spec.op != op:
                continue
            if spec.pid is not None and spec.pid != pid:
                continue
            if spec.kind == "partial" and pages < 2:
                continue
            if spec.calls is not None:
                fired = idx in spec.calls
            else:
                fired = spec.prob > 0.0 and self._rng(i, op, pid).random() < spec.prob
            if fired:
                self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
                return spec
        return None

    def raise_if(self, op: str, pid: int, caller_pid: int) -> None:
        """Draw for a setup-style op (declare/tx) and raise if it fires."""
        from repro.kernel.errors import CMAError

        spec = self.draw(op, pid, caller_pid)
        if spec is not None and spec.kind in KIND_ERRNO:
            raise CMAError(
                KIND_ERRNO[spec.kind],
                f"injected {spec.kind} at {op}(pid={pid})",
            )

    def scale(self, pid: int) -> float:
        """Static straggler slowdown of ``pid`` (1.0 = not a straggler)."""
        s = self._scales.get(pid)
        if s is None:
            s = 1.0
            for spec in self.plan.specs:
                if spec.kind == "straggler" and (spec.pid is None or spec.pid == pid):
                    s *= spec.resolved_factor
            self._scales[pid] = s
        return s

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def counts(self) -> dict:
        """Snapshot of injections fired so far, by kind."""
        return dict(self.injected)


# -- textual plans (REPRO_FAULTS / --faults) ---------------------------------


def parse_plan(text: str) -> FaultPlan:
    """Parse ``"<seed>:<kind>[@value][,<kind>[@value]...]"`` into a plan.

    ``value`` is the per-call probability for errno/partial kinds and the
    slowdown factor for ``straggler``; omitted values use per-kind
    defaults.  Examples::

        parse_plan("7:partial@0.4,eperm@0.1")
        parse_plan("9:straggler@2.5")
    """
    text = text.strip()
    head, sep, body = text.partition(":")
    if not sep or not body.strip():
        raise ValueError(
            f"invalid fault plan {text!r}: expected '<seed>:<kind>[@prob],...'"
        )
    try:
        seed = int(head.strip())
    except ValueError:
        raise ValueError(f"invalid fault-plan seed {head!r}") from None
    specs = []
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        kind, sep, value = item.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (not in {FAULT_KINDS})")
        val: Optional[float] = None
        if sep:
            try:
                val = float(value.strip())
            except ValueError:
                raise ValueError(f"invalid fault value {value!r} in {item!r}") from None
        if kind == "straggler":
            specs.append(FaultSpec(kind, factor=val))
        else:
            prob = val if val is not None else _DEFAULT_PROB[kind]
            specs.append(FaultSpec(kind, prob=prob))
    if not specs:
        raise ValueError(f"fault plan {text!r} names no faults")
    return FaultPlan(seed=seed, specs=tuple(specs))


def plan_from_env() -> Optional[FaultPlan]:
    """The :data:`ENV_FAULTS` plan, or None when unset/empty."""
    raw = os.environ.get(ENV_FAULTS, "").strip()
    if not raw:
        return None
    return parse_plan(raw)
