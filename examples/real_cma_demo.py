#!/usr/bin/env python3
"""Real-kernel demo: the paper's One-to-all microbenchmark on YOUR machine.

Everything else in this repo simulates CMA; this script calls the real
``process_vm_readv`` syscall between forked processes and sweeps the
reader count — Figure 2(b) live.  Numbers depend entirely on your host
(core count, kernel version, NUMA layout); the paper's testbeds were
64-272 thread machines, so a laptop will show a gentler trend.

Requires Linux >= 3.2 and ptrace permission for same-user children
(``/proc/sys/kernel/yama/ptrace_scope`` <= 1, or root).

Run:  python examples/real_cma_demo.py [nbytes] [max_readers]
"""

import os
import sys

from repro.realcma import cma_available, one_to_all_read


def main() -> int:
    if not cma_available():
        print("process_vm_readv is not usable on this host "
              "(non-Linux, kernel < 3.2, or ptrace_scope forbids attach).")
        print("The simulated experiments cover the same ground: try")
        print("  python -m repro.bench fig02")
        return 1

    nbytes = int(sys.argv[1]) if len(sys.argv) > 1 else 256 * 1024
    max_readers = int(sys.argv[2]) if len(sys.argv) > 2 else min(os.cpu_count() or 4, 16)

    print(f"host: {os.cpu_count()} CPUs; one-to-all reads of {nbytes // 1024} KiB "
          f"(20 iterations per reader)\n")
    print(f"{'readers':>8} {'mean us':>10} {'max us':>10} {'vs 1 reader':>12}")
    print("-" * 44)

    base = None
    readers = 1
    while readers <= max_readers:
        res = one_to_all_read(readers=readers, nbytes=nbytes, iters=20)
        assert res.verified, "data corruption — this should never happen"
        if base is None:
            base = res.mean_latency_us
        print(f"{readers:>8} {res.mean_latency_us:>10.1f} {res.max_latency_us:>10.1f} "
              f"{res.mean_latency_us / base:>11.2f}x")
        readers *= 2

    print("\nEvery byte is pattern-verified after transfer.  If the last")
    print("column grows with the reader count you are watching the paper's")
    print("get_user_pages contention on your own kernel.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
