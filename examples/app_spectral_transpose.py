#!/usr/bin/env python3
"""App study: a pseudo-spectral solver's distributed transpose (Alltoall).

The paper's motivation: single-node many-core jobs dominate HPC usage, and
such jobs spend much of their time in intra-node collectives.  This example
models the classic culprit — a 2D pencil-decomposed spectral solver whose
FFT requires two all-to-all transposes per timestep — and asks what the
contention-aware collectives buy *end to end*, Amdahl and all.

Per timestep:  local FFT compute  ->  transpose (Alltoall)  ->
               local FFT compute  ->  transpose back (Alltoall)

Run:  python examples/app_spectral_transpose.py [grid_points_per_rank]
"""

import sys

from repro.bench.report import format_bytes
from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.tuning import Tuner
from repro.machine import get_arch

PROCS = 32
STEPS = 100
BYTES_PER_POINT = 16  # complex128


def main() -> None:
    points = int(sys.argv[1]) if len(sys.argv) > 1 else 128 * 1024
    # each rank exchanges its slab evenly with every peer
    eta = max(points * BYTES_PER_POINT // PROCS, 1)
    # local FFT work per step: a few microseconds per KB is typical for
    # a well-optimized many-core FFT at these sizes
    compute_us = points * BYTES_PER_POINT / 1024 * 2.5

    print(f"pseudo-spectral timestep on the KNL model, {PROCS} ranks")
    print(f"  {points:,} points/rank -> Alltoall block {format_bytes(eta)}; "
          f"local FFT ~{compute_us:.0f}us; {STEPS} steps\n")

    tuner = Tuner.calibrated(get_arch("knl"))
    a2a = {"proposed": tuner.run("alltoall", eta, PROCS).latency_us}
    for lib in LIBRARY_NAMES:
        a2a[lib] = library(lib).run("alltoall", get_arch("knl"), eta, PROCS).latency_us

    print(f"{'stack':<12}{'alltoall':>12}{'step':>12}{'100 steps':>14}{'app speedup':>14}")
    print("-" * 64)
    base_step = None
    for name in ("proposed", *LIBRARY_NAMES):
        step = 2 * compute_us + 2 * a2a[name]
        total_ms = step * STEPS / 1000
        if name == "proposed":
            base_step = step
        print(f"{name:<12}{a2a[name]:>11.1f}u{step:>11.1f}u{total_ms:>12.1f}ms"
              f"{'' if name == 'proposed' else f'{step / base_step:>13.2f}x'}")

    frac = 2 * a2a["proposed"] / (2 * compute_us + 2 * a2a["proposed"])
    print(f"\ncommunication share with the proposed collectives: {frac:.0%}")
    print("(the collective-level speedups from Fig 15 translate to app-level")
    print("gains proportional to the communication share — Amdahl in action)")


if __name__ == "__main__":
    main()
