#!/usr/bin/env python3
"""Library shootout: the Proposed design vs 2017-era MPI library models.

Sweeps one collective across message sizes on one architecture and prints
the Fig 13-16/18-style comparison: the calibrated tuner ("Proposed")
against the MVAPICH2-, Intel-MPI- and Open-MPI-like baselines, plus which
algorithm the tuner actually picked at each size.

Run:  python examples/library_shootout.py [collective] [arch]
      python examples/library_shootout.py gather knl
"""

import sys

from repro.bench.report import format_bytes, format_us
from repro.core.baselines import LIBRARY_NAMES, library
from repro.core.tuning import Tuner
from repro.machine import get_arch


def main() -> None:
    collective = sys.argv[1] if len(sys.argv) > 1 else "scatter"
    arch_name = sys.argv[2] if len(sys.argv) > 2 else "knl"
    procs = min(get_arch(arch_name).default_procs, 48)

    print(f"{collective} on {arch_name}, {procs} processes "
          f"(latencies in us; speedup vs best library)\n")
    tuner = Tuner.calibrated(get_arch(arch_name))

    header = f"{'size':>6} {'proposed':>10} "
    header += " ".join(f"{lib:>10}" for lib in LIBRARY_NAMES)
    header += f" {'speedup':>8}  picked"
    print(header)
    print("-" * len(header))

    eta = 4096
    while eta <= 4 << 20:
        ours = tuner.run(collective, eta, procs).latency_us
        theirs = {
            lib: library(lib).run(collective, get_arch(arch_name), eta, procs).latency_us
            for lib in LIBRARY_NAMES
        }
        best = min(theirs.values())
        choice = tuner.choose(collective, eta, procs)
        row = f"{format_bytes(eta):>6} {format_us(ours):>10} "
        row += " ".join(f"{format_us(theirs[lib]):>10}" for lib in LIBRARY_NAMES)
        row += f" {best / ours:>7.1f}x  {choice.describe()}"
        print(row)
        eta *= 4

    print("\nEvery run moves real bytes; rerun any point with verify=True to")
    print("check MPI semantics (the test suite does this for every algorithm).")


if __name__ == "__main__":
    main()
