#!/usr/bin/env python3
"""App study: data-parallel training, gradient Allreduce per step.

Uses the repository's extension collectives (the paper's future work): a
single-node data-parallel training loop where every step computes local
gradients and allreduces them across ranks.  Compares the extension's ring
/ recursive-doubling / reduce+bcast Allreduce designs and shows the tuner's
size-dependent pick, with one fully *verified* iteration (exact mod-256
reduction) to prove the bytes are right.

Run:  python examples/app_gradient_allreduce.py [model_megabytes]
"""

import sys

from repro.bench.report import format_bytes, format_us
from repro.core.runner import CollectiveSpec, run_collective
from repro.core.tuning import Tuner
from repro.machine import get_arch

PROCS = 16
STEPS = 50


def latency(alg: str, eta: int, verify: bool = False, **params) -> float:
    spec = CollectiveSpec(
        "allreduce", alg, get_arch("knl"), procs=PROCS, eta=eta,
        params=params, verify=verify,
    )
    return run_collective(spec).latency_us


def main() -> None:
    model_mb = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    eta = int(model_mb * (1 << 20))
    compute_us = model_mb * 1800  # forward+backward per step, ~1.8ms/MB

    print(f"data-parallel training on the KNL model: {PROCS} ranks, "
          f"{format_bytes(eta)} gradients, {STEPS} steps\n")

    # one verified iteration first: the reduction is exact
    latency("ring", min(eta, 1 << 20), verify=True)
    print("verified: ring allreduce produced the exact elementwise sum\n")

    algs = {
        "ring": latency("ring", eta),
        "recursive_doubling": latency("recursive_doubling", eta),
        "reduce_bcast(k=4)": latency("reduce_bcast", eta, k=4),
    }
    tuner = Tuner(get_arch("knl"))
    pick = tuner.choose("allreduce", eta, PROCS)

    print(f"{'allreduce design':<22}{'latency':>12}{'step':>12}{'epoch (50)':>14}")
    print("-" * 60)
    for name, lat in sorted(algs.items(), key=lambda kv: kv[1]):
        step = compute_us + lat
        print(f"{name:<22}{format_us(lat):>12}{format_us(step):>12}"
              f"{step * STEPS / 1000:>12.1f}ms")
    print(f"\ntuner pick at {format_bytes(eta)}: {pick.describe()}")

    best = min(algs.values())
    worst = max(algs.values())
    share = best / (compute_us + best)
    print(f"algorithm choice swings the step time by "
          f"{(worst - best) / (compute_us + best):.0%}; "
          f"communication share at best: {share:.0%}")


if __name__ == "__main__":
    main()
