#!/usr/bin/env python3
"""Contention explorer: measure and fit the contention factor gamma(c).

Reproduces the paper's Section II methodology end to end on any of the
three architecture models:

* trigger individual CMA steps via iovec games (Table III),
* derive alpha / beta / l (Table IV),
* measure per-page lock+pin time across reader counts and fit gamma with
  nonlinear least squares (Fig. 5),
* show where the throughput sweet spot lands (Fig. 6) — the number the
  throttled designs are built around.

Run:  python examples/contention_explorer.py [knl|broadwell|power8]
"""

import sys

from repro.bench import microbench
from repro.core import fitting
from repro.machine import get_arch

def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "knl"
    arch = get_arch(name)
    topo = arch.topology
    print(f"architecture: {name} ({topo.sockets} socket(s) x "
          f"{topo.cores_per_socket} cores x {topo.threads_per_core} threads)\n")

    # -- Table III: step triggering ---------------------------------------
    print("Table III: step timings (8 pages)")
    steps = fitting.measure_steps(arch, pages=8)
    print(f"  T1 syscall   {steps.t1_syscall:8.2f} us")
    print(f"  T2 +check    {steps.t2_check:8.2f} us")
    print(f"  T3 +lock/pin {steps.t3_lock_pin:8.2f} us")
    print(f"  T4 +copy     {steps.t4_copy:8.2f} us\n")

    # -- Table IV: derived constants ---------------------------------------
    base = fitting.derive_base_params(arch)
    print("Table IV: derived parameters")
    print(f"  alpha = {base.alpha:.2f} us   beta = {base.beta_gbps:.2f} GB/s   "
          f"l = {base.l_page:.2f} us   s = {base.page_size:,} B\n")

    # -- Fig 5: gamma fit ----------------------------------------------------
    top = min(arch.default_procs - 1, 32)
    readers = sorted({1, 2, 4, 8, 12, 16, top})
    samples = fitting.measure_gamma(arch, page_counts=(10, 50), reader_counts=readers)
    knee = topo.cores_per_socket if topo.sockets > 1 else None
    fit = fitting.fit_gamma(samples, knee=knee)
    print("Fig 5: contention factor (measured -> fitted)")
    for c in readers:
        meas = [s.gamma for s in samples if s.readers == c]
        mean = sum(meas) / len(meas)
        bar = "#" * min(60, int(fit(c)))
        print(f"  c={c:>3}  measured {mean:8.1f}  fit {fit(c):8.1f}  {bar}")
    spill = f" + {fit.spill:.3f}(c-{fit.knee})^2 beyond one socket" if fit.spill else ""
    print(f"  gamma(c) = 1 + {fit.g1:.2f}(c-1) + {fit.g2:.3f}(c-1)^2{spill}\n")

    # -- Fig 6: the sweet spot -------------------------------------------------
    print("Fig 6: relative aggregate throughput, 1 MiB reads")
    best_c, best_v = 1, 1.0
    for c in readers:
        if c == 1:
            continue
        rel = microbench.relative_throughput(arch, c, 1 << 20)
        marker = " <-- sweet spot so far" if rel > best_v else ""
        if rel > best_v:
            best_c, best_v = c, rel
        print(f"  {c:>3} readers: {rel:6.2f}x{marker}")
    print(f"\nThrottle factor suggestion for {name}: ~{best_c} "
          f"(paper: {arch.throttle_candidates})")


if __name__ == "__main__":
    main()
