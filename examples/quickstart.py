#!/usr/bin/env python3
"""Quickstart: run one contention-aware collective and see why it wins.

This is the 5-minute tour:

1. build a simulated KNL node,
2. run MPI_Scatter three ways — the naive parallel read, the fully serial
   sequential write, and the paper's throttled read — with *verified* data
   movement,
3. watch the mm-lock contention appear in the ftrace-style breakdown,
4. let the tuner pick the algorithm for you.

Run:  python examples/quickstart.py
"""

from repro import CollectiveSpec, get_arch, run_collective
from repro.core.tuning import Tuner

PROCS = 32
ETA = 256 * 1024  # 256 KiB per receiver


def main() -> None:
    arch = get_arch("knl")
    print(f"Simulated node: {arch.name}, {arch.topology.physical_cores} cores, "
          f"{PROCS} MPI ranks, {ETA // 1024} KiB per block\n")

    print(f"{'algorithm':<28}{'latency':>12}   {'lock+pin share':>15}")
    print("-" * 60)
    for algorithm, params in [
        ("parallel_read", {}),
        ("sequential_write", {}),
        ("throttled_read", {"k": 8}),
    ]:
        spec = CollectiveSpec(
            collective="scatter",
            algorithm=algorithm,
            arch=get_arch("knl"),
            procs=PROCS,
            eta=ETA,
            params=params,
            verify=True,  # every byte checked against MPI semantics
            trace=True,  # record syscall/check/lock/pin/copy spans
        )
        res = run_collective(spec)
        ph = res.trace_by_phase
        lockpin = ph.get("lock", 0.0) + ph.get("pin", 0.0)
        total = sum(ph.values()) or 1.0
        label = algorithm + (f"(k={params['k']})" if params else "")
        print(f"{label:<28}{res.latency_us:>10.1f}us   {lockpin / total:>14.1%}")

    print("\nThe parallel read hammers the root's mm lock (the get_user_pages")
    print("bottleneck); sequential writes avoid it but serialize everything;")
    print("throttling bounds the concurrency at the sweet spot.\n")

    tuner = Tuner.calibrated(get_arch("knl"))
    for eta in (4096, 65536, 1 << 20, 4 << 20):
        choice = tuner.choose("scatter", eta, PROCS)
        print(f"tuner pick @ {eta // 1024:>5} KiB: {choice.describe():<22} "
              f"(predicted {choice.predicted_us:.0f}us)")


if __name__ == "__main__":
    main()
