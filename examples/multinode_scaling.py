#!/usr/bin/env python3
"""Multi-node scaling: the two-level Gather of Section VII-G (Fig. 17).

Shows why the contention-aware intra-node designs change the multi-node
picture: once the per-node gather is fast, a hierarchical (two-level)
gather beats the traditional flat design, and the advantage *grows* with
node count — plus the paper's future-work pipelined variant.

Run:  python examples/multinode_scaling.py
"""

from repro.bench.report import format_bytes, format_us
from repro.core.multinode import MultiNodeModel
from repro.machine import get_arch


def main() -> None:
    mn = MultiNodeModel(get_arch("knl"))
    ppn = 64

    for nodes in (2, 4, 8):
        print(f"\n{nodes} KNL nodes x {ppn} ppn = {nodes * ppn} processes")
        print(f"{'size':>6} {'flat':>10} {'two-level':>10} {'pipelined':>10} {'speedup':>8}")
        print("-" * 50)
        eta = 16 * 1024
        while eta <= 1 << 20:
            pt = mn.fig17_point(nodes, ppn, eta)
            print(
                f"{format_bytes(eta):>6} {format_us(pt['flat']):>10} "
                f"{format_us(pt['two_level']):>10} {format_us(pt['pipelined']):>10} "
                f"{pt['speedup']:>7.1f}x"
            )
            eta *= 4

    print("""
Why the speedup GROWS with node count (the paper's counter-intuitive
result): the flat design lands (nodes-1)*ppn separate messages in the
root's unexpected queue — per-message latency plus O(queue) matching —
while the two-level design pays those costs once per *node* and runs all
intra-node gathers in parallel.""")


if __name__ == "__main__":
    main()
